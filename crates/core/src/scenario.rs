//! The unified **Scenario → Outcome** experiment surface.
//!
//! Every protocol in the workspace — the paper's Algorithm BW, the
//! crash-tolerant 2-reach variant, and the related-work baselines — runs
//! through one composable pipeline:
//!
//! ```text
//! Scenario::builder(graph, f)      // network + fault bound
//!     .inputs(...)                 // one input per node
//!     .epsilon(...)                // agreement parameter
//!     .fault(v, FaultKind::...)    // protocol-agnostic fault assignment
//!     .scheduler(SchedulerSpec::…) // who controls message timing
//!     .runtime(Runtime::...)       // discrete-event sim, real threads, or the network
//!     .protocol(ByzantineWitness::default())
//!     .run()?                      // -> Outcome
//! ```
//!
//! A [`Scenario`] is a pure *data-level* description: the network, the
//! inputs, the fault assignment, the adversarial delivery schedule and the
//! runtime. A [`Protocol`] owns the protocol-specific knobs (flood mode,
//! path budgets, iteration counts) and turns a scenario into the single
//! [`Outcome`] type — honest outputs, spread/convergence/validity,
//! per-round spread, runtime statistics, and an optional delivery-trace
//! handle. The [`sweep`] submodule turns scenarios into *experiment plans*:
//! labelled axes over every knob here (protocols, graphs, fault bounds,
//! placements, inputs, ε, scheduler families, runtimes, rounds), expanded
//! into a cartesian cell product, run in parallel, and reduced over the
//! seed batch into distributional statistics with `bench_trend`-compatible
//! JSON reports.
//!
//! # Protocols and where they come from in the paper
//!
//! | `Protocol` implementation | Paper section it reproduces |
//! |---------------------------|-----------------------------|
//! | [`ByzantineWitness`] | Algorithms 1–3 (Sections 4.1–4.5): RedundantFlood, witness threads, Filter-and-Average; Theorem 4 under 3-reach |
//! | [`CrashTwoReach`] | Table 2, asynchronous/crash cell: approximate consensus under 2-reach (Tseng–Vaidya 2012, per Section 2) |
//! | `Aad04` (dbac-baselines) | Section 1 related work \[1\]: Abraham–Amit–Dolev OPODIS 2004, the complete-network algorithm BW generalizes |
//! | `IterativeTrimmedMean` (dbac-baselines) | Related work \[13, 25\] — Vaidya–Tseng–Liang, arXiv [1201.4183](https://arxiv.org/abs/1201.4183) (synchronous) and [1202.6094](https://arxiv.org/abs/1202.6094) (asynchronous): W-MSR iterative consensus, correct under `(f+1, f+1)`-robustness rather than 3-reach; message-passing engine in `dbac-baselines::iterengine`, all three runtimes |
//! | `ReliableBroadcastProbe` (dbac-baselines) | Bracha reliable broadcast, the substrate of AAD04 (one-shot trimmed-agreement probe) |
//!
//! The baseline implementations live in `dbac-baselines::scenario` (this
//! crate sits below that one in the dependency order); the `dbac` facade
//! re-exports the whole surface from a single `dbac::scenario` module.
//!
//! # Scale past 128 nodes
//!
//! `NodeSet` was a `u128` bitset through PR 8, capping every topology at
//! 128 nodes. It is now a const-generic multi-word bitset: 256 nodes at
//! the default width, 16 384 under the `huge-graphs` cargo feature — and
//! the retired u128 implementation survives as a differential oracle
//! behind `reference-nodeset`. Which protocols actually *reach* those
//! widths is a different question:
//!
//! * [`ByzantineWitness`] enumerates simple paths, which is exponential
//!   in `n` — it stays the small-`n` exact reference (experiment E11a
//!   quantifies the footprint).
//! * `IterativeTrimmedMean` needs only per-neighbor state. Its
//!   message-passing engine (`dbac-baselines::iterengine`) keeps one flat
//!   round-major value column per node and runs 10⁴-node circulant
//!   scenarios through this builder unchanged — see the
//!   `scaling_iterative` bin for the sweep, and
//!   `dbac_graph::generators::circulant_pow2` /
//!   `dbac_graph::generators::layered_expander` for robust digraph
//!   families with constant or logarithmic degree at any `n`.
//!
//! The scenario surface itself is width-agnostic: nothing here changes
//! between a 4-node clique and a 10⁴-node circulant except the numbers.
//!
//! # Certify a topology
//!
//! Whether a graph satisfies a protocol's correctness condition is
//! decidable exactly only at small `n`: the `(r, s)`-robustness condition
//! of `IterativeTrimmedMean` quantifies over subset pairs, and the exact
//! checker (`dbac_conditions::robustness::exact_verdict`) hits a size
//! cliff around 20 nodes — at the 10⁴-node scale of the `scaling_iterative`
//! sweep it would not finish in the lifetime of the experiment. The
//! `dbac_conditions::robustness` subsystem closes the gap with
//! **certificates**: polynomial sufficient rules
//! (`dbac_conditions::robustness::certify`) issue a serializable
//! `RobustnessCertificate` naming the rule, its parameters and per-node
//! evidence, and an O(V+E) verifier
//! (`dbac_conditions::robustness::verify_certificate`) re-checks any
//! certificate without re-running the search. When each rule applies:
//!
//! * `min-in-degree` — dense graphs: every in-degree ≥ `⌊n/2⌋ + r − 1`
//!   (cliques, near-complete graphs; certifies every `s`).
//! * `circulant-prefix` — ring-structured graphs where every node sees
//!   its `k` predecessors, `k ≥ max(2r−1, 2r−2+⌈s/2⌉)` (the circulant
//!   families, bidirectional cycles; the rule behind the 10⁴-node runs).
//! * `strongly-connected` — any strongly connected graph, for
//!   `(1, s ≤ 2)`.
//! * `layered-expander` — graphs containing a
//!   `generators::layered_expander(L ≥ 2, w ≥ 3)` spanning subgraph, for
//!   `(1, s ≤ 4)`.
//!
//! Reading a certificate: `n`/`r`/`s` state the claim, `rule` + params
//! name the argument, and `evidence` holds the per-node quantities the
//! verifier recomputes entry-by-entry (in-degrees, prefix lengths), so a
//! tampered certificate is rejected with a typed error. When no rule
//! fires the result is a typed `Uncertified` warning — the rules are
//! sufficient, not necessary, and running unproven topologies is itself
//! an experiment. `IterativeTrimmedMean` attaches the status to
//! [`Outcome::certification`]; sweep plans label graph-axis points with
//! it via [`sweep::ExperimentPlan::certify_graphs`]; the `certify` bin
//! sweeps the generator families and emits the certificate JSON that CI
//! archives next to `net.json`/`stats.json`.
//!
//! # Inject link faults
//!
//! [`FaultKind`] places faults on *nodes* — the paper's Byzantine model.
//! [`LinkFaultPlan`] places faults on *edges*: the link-failure model of
//! Tseng–Vaidya (arXiv 1401.6615), where the network itself drops,
//! duplicates, reorders or corrupts messages while every node stays
//! honest. The two compose freely on the builder, and both runtimes apply
//! the plan through the same stateless seeded decision function, so the
//! fate of the k-th message on an edge is runtime-independent:
//!
//! ```
//! use dbac_core::scenario::{LinkFault, LinkFaultPlan, Scenario};
//! use dbac_graph::{generators, NodeId};
//!
//! let plan = LinkFaultPlan::new(7)
//!     .fault(NodeId::new(0), NodeId::new(1), LinkFault::Drop { prob: 0.9 })
//!     .fault(NodeId::new(2), NodeId::new(3), LinkFault::Omit);
//! let out = Scenario::builder(generators::clique(4), 0)
//!     .inputs(vec![0.0, 10.0, 4.0, 6.0])
//!     .epsilon(0.5)
//!     .seed(1)
//!     .link_faults(plan)
//!     .run()
//!     .expect("chaos is data, not an error");
//! assert!(out.sim_stats.messages_dropped() > 0, "the lossy links bit");
//! assert!(out.valid(), "deciders never leave the honest-input hull");
//! ```
//!
//! How the two fault axes map onto the models:
//!
//! | Axis | Lives on | Model | Examples |
//! |------|----------|-------|----------|
//! | [`FaultKind`] | nodes | Byzantine/crash nodes (this paper, Section 2) | `Crash`, `ConstantLiar`, `Equivocator` |
//! | [`LinkFault`] | directed edges | link failures (arXiv 1401.6615: faults on edges, not nodes) | `Drop`, `Duplicate`, `Reorder`, `Corrupt`, `Partition`, `Omit` |
//!
//! Liveness loss under link faults is *observable*, never fatal: the
//! simulator runs to quiescence and reports non-deciders through
//! [`Outcome::all_decided`], while the threaded and network runtimes'
//! watchdogs report stragglers per node in [`Outcome::incomplete`] with a
//! typed [`IncompleteReason`], still extracting and scoring every survivor.
//!
//! # Run over the network
//!
//! [`Runtime::Net`] executes the same scenario with every message
//! **serialized onto a real byte stream** — the only runtime in which the
//! wire actually exists. The three runtimes compare as follows:
//!
//! | | [`Runtime::Sim`] | [`Runtime::Threaded`] | [`Runtime::Net`] |
//! |---|---|---|---|
//! | Concurrency | none (virtual time) | OS threads | OS threads |
//! | Message transport | in-memory event queue | crossbeam channels | framed duplex connections (loopback TCP, or in-process byte pipes) |
//! | Serialization | none | none | length-prefixed binary codec ([`WireMessage`]) |
//! | Determinism | bit-for-bit from the seed | schedule-dependent | schedule-dependent |
//! | Non-completion | quiescence, [`Outcome::all_decided`] | watchdog → [`Outcome::incomplete`] | watchdog → [`Outcome::incomplete`] |
//! | Stats coverage ([`Outcome::sim_stats`]) | transport + virtual time + wall clock | transport + wall clock | transport + wall clock + rejected frames |
//!
//! **Codec wire format.** Each frame is `len:u32le ‖ body` with `len`
//! capped at 1 MiB; the body is one hand-rolled little-endian message
//! encoding (see each protocol's [`WireMessage`] impl — path ids travel as
//! raw `u32`s, suspect sets as `u128` bitmasks, values as `f64` bit
//! patterns, so NaN payloads and the `0.0`/`-0.0` distinction survive
//! bit-exactly). Connections begin with a 7-byte handshake
//! (`magic ‖ version ‖ node-id`) in both directions. The codec is total:
//! adversarial bytes produce typed [`WireError`]s, never panics.
//!
//! **Degradation semantics.** A frame that fails to decode is counted in
//! the `rejected` transport bucket of [`Outcome::sim_stats`] and skipped;
//! a framing-level error
//! (oversize length prefix, mid-frame truncation) closes that one
//! connection; a node left behind — partitioned, starved, or panicked —
//! lands in [`Outcome::incomplete`] with the same typed
//! [`IncompleteReason`]s as the threaded runtime, while every survivor is
//! still extracted and scored.
//!
//! At `f = 0` the honest decisions are interleaving-independent, so all
//! three runtimes must produce bit-identical outputs and histories —
//! `tests/cross_runtime.rs` enforces exactly that three-way gate.
//!
//! # Observe a live run
//!
//! Every run feeds a contention-free [`StatsRegistry`]: per-thread
//! sharded counters covering transport traffic **by message class**
//! ([`MsgClass`]), protocol progress (rounds, witness completions,
//! Maximal-Consistency firings, FRA marks) and per-node queue/done
//! gauges. By default the registry is private to the run and its final
//! merged [`StatsSnapshot`] lands in [`Outcome::sim_stats`]. Attach your
//! own registry with [`ScenarioBuilder::stats`] to watch the same
//! counters *while the run is in flight* — snapshots are safe from any
//! thread, never block a writer, and never regress between polls:
//!
//! ```
//! use dbac_core::scenario::{Scenario, StatsRegistry};
//! use dbac_graph::generators;
//! use std::sync::Arc;
//!
//! let registry = StatsRegistry::new(4);
//! let out = Scenario::builder(generators::clique(4), 0)
//!     .inputs(vec![0.0, 10.0, 4.0, 6.0])
//!     .epsilon(0.5)
//!     .stats(Arc::clone(&registry))
//!     .run()
//!     .expect("clique converges");
//! // Any thread could have polled `registry.snapshot()` during the run
//! // (the `dbacd` daemon serves exactly that over a socket). After the
//! // run, the registry and the outcome agree bit-for-bit.
//! assert_eq!(registry.snapshot(), out.sim_stats);
//! assert!(out.sim_stats.messages_delivered() > 0);
//! assert!(out.sim_stats.protocol.rounds_fired > 0);
//! ```
//!
//! Quantities a runtime genuinely cannot measure are typed
//! [`Coverage::NotObservable`] markers, never silent zeros: virtual time
//! exists only under [`Runtime::Sim`], while wall-clock elapsed is
//! measured everywhere. The `dbacd` binary (dbac-bench) wraps this plane
//! in an operator daemon: it runs a scenario in a background thread and
//! answers `stats` / `nodes` / `progress` requests over line-delimited
//! JSON while the run makes progress.
//!
//! # Design notes
//!
//! * **Validation is typed.** Builder misuse returns precise
//!   [`RunError`] variants (`InputLengthMismatch`, `NonPositiveEpsilon`,
//!   `FaultOutsideGraph`, `TooManyFaults`, …) instead of stringly-typed
//!   reasons, so harnesses can branch on failure causes.
//! * **[`drive`] is the only place that touches the runtimes.** Protocol
//!   implementations hand it a fully-assigned process fleet; no other
//!   module constructs [`Simulation`], [`Threaded`] or `Net` (the one sanctioned
//!   exception is the Appendix-B splice executor in `dbac-bench`, which
//!   replays message-level traces below the scenario abstraction).
//! * **Faults are protocol-agnostic data.** [`FaultKind`] is the union of
//!   every behaviour the workspace knows; each protocol maps the subset it
//!   can express and rejects the rest with a typed error.

#![deny(missing_docs)]

pub mod sweep;

use crate::adversary::AdversaryKind;
use crate::config::{num_rounds, FloodMode, ProtocolConfig};
use crate::crash::{CrashAfter, CrashNode, CrashTopology};
use crate::error::RunError;
use crate::node::HonestNode;
use crate::precompute::Topology;
use dbac_graph::{Digraph, NodeId, NodeSet, PathBudget};
use dbac_sim::net::{Net, NetConfig};
use dbac_sim::process::{Adversary, Process};
use dbac_sim::scheduler::{EdgeDelay, FixedDelay, RandomDelay};
use dbac_sim::sim::Simulation;
use dbac_sim::threaded::{Threaded, ThreadedConfig};
use dbac_sim::{DeliveryPolicy, VirtualTime};
use std::sync::Arc;
use std::time::Duration;

pub use dbac_sim::chaos::{LinkFault, LinkFaultPlan};
pub use dbac_sim::net::codec::{WireError, WireMessage};
pub use dbac_sim::net::connection::TransportKind;
pub use dbac_sim::stats::{
    ClassCounters, Coverage, MsgClass, NodeCounters, ProtocolCounters, StatsHandle, StatsRegistry,
    StatsSnapshot, TransportSnapshot,
};
pub use dbac_sim::threaded::{Incomplete, IncompleteReason};

// ---------------------------------------------------------------------------
// Schedule, runtime and fault descriptions
// ---------------------------------------------------------------------------

/// Message-delivery schedule for a run — the adversary's *timing* half
/// (its *content* half is the fault assignment).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SchedulerSpec {
    /// Constant per-message delay.
    Fixed(u64),
    /// Seeded uniform-random delays in `[min, max]`.
    Random {
        /// RNG seed.
        seed: u64,
        /// Minimum delay.
        min: u64,
        /// Maximum delay.
        max: u64,
    },
    /// Adversarial per-edge delays layered over a base schedule: selected
    /// edges get a fixed (possibly enormous) delay, exactly the paper's
    /// Appendix-B device ("the delivery delay of the latter messages is
    /// lower bounded by an arbitrary number `T`").
    EdgeDelays {
        /// Schedule for every edge without an override.
        base: Box<SchedulerSpec>,
        /// `(from, to, delay)` overrides.
        overrides: Vec<(NodeId, NodeId, u64)>,
    },
}

impl SchedulerSpec {
    /// Instantiates the delivery policy.
    #[must_use]
    pub fn build(&self) -> Box<dyn DeliveryPolicy + Send> {
        match self {
            SchedulerSpec::Fixed(d) => Box::new(FixedDelay::new(*d)),
            SchedulerSpec::Random { seed, min, max } => {
                Box::new(RandomDelay::new(*seed, *min, *max))
            }
            SchedulerSpec::EdgeDelays { base, overrides } => {
                let mut policy = EdgeDelay::new(base.build());
                for &(u, v, d) in overrides {
                    policy.delay_edge(u, v, d);
                }
                Box::new(policy)
            }
        }
    }

    /// The historical default schedule of the retired pre-scenario entry
    /// points: seeded uniform delays in `[1, 15]`. One named constructor
    /// so the experiment bins and the tests that mirror legacy outputs
    /// all agree on the same numbers.
    #[must_use]
    pub fn legacy_random(seed: u64) -> Self {
        SchedulerSpec::Random { seed, min: 1, max: 15 }
    }

    /// The seed driving this schedule (0 for purely deterministic specs);
    /// also seeds the threaded runtime's jitter.
    #[must_use]
    pub fn seed(&self) -> u64 {
        match self {
            SchedulerSpec::Fixed(_) => 0,
            SchedulerSpec::Random { seed, .. } => *seed,
            SchedulerSpec::EdgeDelays { base, .. } => base.seed(),
        }
    }
}

/// Which runtime executes the scenario.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Runtime {
    /// The deterministic discrete-event simulator — reproducible
    /// bit-for-bit from the scenario.
    Sim,
    /// The thread-per-node runtime: genuine OS-level concurrency over
    /// crossbeam channels. Delivery timing comes from real scheduling (the
    /// [`SchedulerSpec`] seed only drives send jitter); transport counters
    /// in [`Outcome::sim_stats`] come from the per-thread stats shards of
    /// the send-path interposer and the node event loops. Virtual time is
    /// reported as [`Coverage::NotObservable`] — wall-clock runs have no
    /// virtual clock; wall-clock elapsed is measured instead. Nodes that
    /// miss the watchdog deadline degrade into [`Outcome::incomplete`]
    /// entries instead of failing the run.
    Threaded {
        /// Wall-clock watchdog deadline for the run.
        timeout: Duration,
        /// Upper bound (exclusive) on the random per-send jitter, in
        /// microseconds; 0 disables injected jitter.
        jitter_micros: u64,
    },
    /// The network runtime: one event loop per node, every message
    /// serialized through the length-prefixed binary wire codec and moved
    /// over framed, handshaken duplex connections — loopback TCP when the
    /// environment can bind a socket, byte-real in-process pipes
    /// otherwise. Degradation semantics are shared with
    /// [`Runtime::Threaded`]: stragglers land in [`Outcome::incomplete`],
    /// and decode-rejected frames are counted in the `rejected` transport
    /// bucket of [`Outcome::sim_stats`]. See the module-level
    /// ["Run over the network"](self#run-over-the-network) section.
    Net {
        /// Wall-clock watchdog deadline for the run.
        timeout: Duration,
    },
}

impl Runtime {
    /// Default send jitter of the threaded runtime, in microseconds.
    pub const DEFAULT_JITTER_MICROS: u64 = 30;

    /// The threaded runtime with the default send jitter.
    #[must_use]
    pub fn threaded(timeout: Duration) -> Runtime {
        Runtime::Threaded { timeout, jitter_micros: Runtime::DEFAULT_JITTER_MICROS }
    }

    /// The network runtime (transport auto-detected: loopback TCP when
    /// available, in-process framed pipes otherwise).
    #[must_use]
    pub fn net(timeout: Duration) -> Runtime {
        Runtime::Net { timeout }
    }

    /// Short display name (also used in typed errors).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Runtime::Sim => "sim",
            Runtime::Threaded { .. } => "threaded",
            Runtime::Net { .. } => "net",
        }
    }
}

/// A protocol-agnostic fault behaviour: the union of every strategy the
/// workspace implements. Each [`Protocol`] maps the subset it can express
/// and rejects the rest with [`RunError::UnsupportedFault`].
#[derive(Clone, Debug, PartialEq)]
pub enum FaultKind {
    /// Crashed from the start — sends nothing, ever.
    Crash,
    /// Behaves honestly for its first `sends` messages, then crashes (the
    /// classic mid-protocol crash; crash-protocol specific).
    CrashAfter {
        /// Number of honest sends before dying.
        sends: usize,
    },
    /// Floods a fixed extreme value but otherwise participates honestly (a
    /// validity attack).
    ConstantLiar {
        /// The injected value.
        value: f64,
    },
    /// Tells half of its out-neighbors `low` and the rest `high` (a
    /// split-brain / agreement attack).
    Equivocator {
        /// Value for the first half.
        low: f64,
        /// Value for the second half.
        high: f64,
    },
    /// Relays others' messages with the values replaced by `spoof` (an
    /// integrity attack on indirect paths).
    RelayTamperer {
        /// The value written into every relayed flood.
        spoof: f64,
    },
    /// Fabricates floods with forged (well-formed) propagation paths
    /// claiming honest initiators reported `forged_value`.
    PathFabricator {
        /// The forged value attributed to other initiators.
        forged_value: f64,
    },
    /// Sends `base + slope·round` — a drifting attack (iterative-protocol
    /// specific).
    Ramp {
        /// Initial value.
        base: f64,
        /// Per-round drift.
        slope: f64,
    },
    /// Seeded random mixture of lying, tampering and dropping.
    Chaotic {
        /// RNG seed (keeps runs reproducible).
        seed: u64,
    },
}

impl FaultKind {
    /// Short kebab-case label, used in sweep labels and typed errors.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Crash => "crash",
            FaultKind::CrashAfter { .. } => "crash-after",
            FaultKind::ConstantLiar { .. } => "constant-liar",
            FaultKind::Equivocator { .. } => "equivocator",
            FaultKind::RelayTamperer { .. } => "relay-tamperer",
            FaultKind::PathFabricator { .. } => "path-fabricator",
            FaultKind::Ramp { .. } => "ramp",
            FaultKind::Chaotic { .. } => "chaotic",
        }
    }

    /// The BW adversary realizing this fault, if Algorithm BW can express
    /// it.
    #[must_use]
    pub fn adversary_kind(&self) -> Option<AdversaryKind> {
        match *self {
            FaultKind::Crash => Some(AdversaryKind::Crash),
            FaultKind::ConstantLiar { value } => Some(AdversaryKind::ConstantLiar { value }),
            FaultKind::Equivocator { low, high } => Some(AdversaryKind::Equivocator { low, high }),
            FaultKind::RelayTamperer { spoof } => Some(AdversaryKind::RelayTamperer { spoof }),
            FaultKind::PathFabricator { forged_value } => {
                Some(AdversaryKind::PathFabricator { forged_value })
            }
            FaultKind::Chaotic { seed } => Some(AdversaryKind::Chaotic { seed }),
            FaultKind::CrashAfter { .. } | FaultKind::Ramp { .. } => None,
        }
    }
}

impl From<AdversaryKind> for FaultKind {
    fn from(kind: AdversaryKind) -> Self {
        match kind {
            AdversaryKind::Crash => FaultKind::Crash,
            AdversaryKind::ConstantLiar { value } => FaultKind::ConstantLiar { value },
            AdversaryKind::Equivocator { low, high } => FaultKind::Equivocator { low, high },
            AdversaryKind::RelayTamperer { spoof } => FaultKind::RelayTamperer { spoof },
            AdversaryKind::PathFabricator { forged_value } => {
                FaultKind::PathFabricator { forged_value }
            }
            AdversaryKind::Chaotic { seed } => FaultKind::Chaotic { seed },
        }
    }
}

// ---------------------------------------------------------------------------
// The Protocol trait
// ---------------------------------------------------------------------------

/// An algorithm that can execute a [`Scenario`].
///
/// Implementations own the protocol-specific knobs (flood discipline, path
/// budgets, iteration counts) as struct fields; everything
/// protocol-agnostic lives in the scenario. `check` rejects scenarios the
/// protocol cannot express with typed errors *before* any expensive
/// precomputation; `execute` performs the run. Call sites should prefer
/// [`Scenario::run`], which chains the two.
pub trait Protocol: Send + Sync {
    /// Short name used in labels, errors and [`Outcome::protocol`].
    fn name(&self) -> &'static str;

    /// Validates protocol-specific requirements: fault-kind support,
    /// runtime support, resilience bounds, network shape.
    ///
    /// # Errors
    ///
    /// A precise [`RunError`] variant describing the first mismatch.
    fn check(&self, scenario: &Scenario) -> Result<(), RunError>;

    /// Executes the scenario (assumes `check` passed).
    ///
    /// # Errors
    ///
    /// Topology precomputation or runtime failures.
    fn execute(&self, scenario: &Scenario) -> Result<Outcome, RunError>;
}

// ---------------------------------------------------------------------------
// Scenario + builder
// ---------------------------------------------------------------------------

/// A fully specified, validated experiment: network, inputs, faults,
/// schedule, runtime and protocol. Build one with [`Scenario::builder`].
#[derive(Clone)]
pub struct Scenario {
    graph: Arc<Digraph>,
    f: usize,
    inputs: Vec<f64>,
    epsilon: f64,
    range: (f64, f64),
    faults: Vec<(NodeId, FaultKind)>,
    link_faults: Option<LinkFaultPlan>,
    scheduler: SchedulerSpec,
    runtime: Runtime,
    rounds_override: Option<u32>,
    max_events: u64,
    record_trace: bool,
    stats: Option<Arc<StatsRegistry>>,
    protocol: Arc<dyn Protocol>,
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("protocol", &self.protocol.name())
            .field("nodes", &self.graph.node_count())
            .field("f", &self.f)
            .field("epsilon", &self.epsilon)
            .field("faults", &self.faults)
            .field("link_faults", &self.link_faults)
            .field("scheduler", &self.scheduler)
            .field("runtime", &self.runtime)
            .finish()
    }
}

impl Scenario {
    /// Starts describing a scenario over `graph` with fault bound `f`.
    ///
    /// Accepts the graph owned or pre-shared: an `Arc<Digraph>` is stored
    /// as-is, so sweeps expanding many cells over one graph share a single
    /// copy.
    #[must_use]
    pub fn builder(graph: impl Into<Arc<Digraph>>, f: usize) -> ScenarioBuilder {
        ScenarioBuilder {
            graph: graph.into(),
            f,
            inputs: Vec::new(),
            epsilon: 0.1,
            range: None,
            faults: Vec::new(),
            link_faults: None,
            scheduler: SchedulerSpec::Fixed(1),
            runtime: Runtime::Sim,
            rounds_override: None,
            max_events: 50_000_000,
            record_trace: false,
            stats: None,
            protocol: None,
        }
    }

    /// Runs the scenario: protocol-specific validation, then execution.
    ///
    /// # Errors
    ///
    /// Typed validation errors from [`Protocol::check`], then topology /
    /// runtime failures from [`Protocol::execute`]. An honest node failing
    /// to decide is *not* an error — it is reported through
    /// [`Outcome::all_decided`], because on graphs violating the
    /// protocol's condition that is the expected observable behaviour.
    pub fn run(&self) -> Result<Outcome, RunError> {
        let protocol = Arc::clone(&self.protocol);
        protocol.check(self)?;
        protocol.execute(self)
    }

    /// The network.
    #[must_use]
    pub fn graph(&self) -> &Digraph {
        self.graph.as_ref()
    }

    /// The fault bound `f`.
    #[must_use]
    pub fn f(&self) -> usize {
        self.f
    }

    /// One input per node (fault nodes' entries are placeholders).
    #[must_use]
    pub fn inputs(&self) -> &[f64] {
        &self.inputs
    }

    /// The agreement parameter ε.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The a-priori known input range (explicit, or the honest-input hull).
    #[must_use]
    pub fn range(&self) -> (f64, f64) {
        self.range
    }

    /// The fault assignment.
    #[must_use]
    pub fn faults(&self) -> &[(NodeId, FaultKind)] {
        &self.faults
    }

    /// The link-fault plan (the chaos layer), if any.
    #[must_use]
    pub fn link_faults(&self) -> Option<&LinkFaultPlan> {
        self.link_faults.as_ref()
    }

    /// The message-delivery schedule.
    #[must_use]
    pub fn scheduler(&self) -> &SchedulerSpec {
        &self.scheduler
    }

    /// The selected runtime.
    #[must_use]
    pub fn runtime(&self) -> Runtime {
        self.runtime
    }

    /// The round-count override, if any.
    #[must_use]
    pub fn rounds_override(&self) -> Option<u32> {
        self.rounds_override
    }

    /// The simulator's event budget.
    #[must_use]
    pub fn max_events(&self) -> u64 {
        self.max_events
    }

    /// Whether a delivery trace is recorded (Sim runtime only).
    #[must_use]
    pub fn records_trace(&self) -> bool {
        self.record_trace
    }

    /// The externally attached live stats registry, if any.
    #[must_use]
    pub fn stats_registry(&self) -> Option<&Arc<StatsRegistry>> {
        self.stats.as_ref()
    }

    /// Returns the scenario with `registry` attached, replacing any
    /// previously attached registry — the post-build counterpart of
    /// [`ScenarioBuilder::stats`], for callers (like the `dbacd` daemon)
    /// that receive a ready-built scenario and still need a shared
    /// observation handle.
    #[must_use]
    pub fn with_stats(mut self, registry: Arc<StatsRegistry>) -> Self {
        self.stats = Some(registry);
        self
    }

    /// The registry this scenario's run will feed: the attached one, or a
    /// fresh private registry. Protocol implementations call this once per
    /// run, register per-node handles on it, and hand it to [`drive`].
    #[must_use]
    pub fn resolve_stats(&self) -> Arc<StatsRegistry> {
        self.stats.clone().unwrap_or_else(|| StatsRegistry::new(self.graph.node_count()))
    }

    /// The selected protocol.
    #[must_use]
    pub fn protocol(&self) -> &dyn Protocol {
        self.protocol.as_ref()
    }

    /// The same scenario on a different runtime (no re-validation — the
    /// runtime does not affect any validity check).
    #[must_use]
    pub fn with_runtime(mut self, runtime: Runtime) -> Self {
        self.runtime = runtime;
        self
    }

    /// The set of non-faulty nodes.
    #[must_use]
    pub fn honest_set(&self) -> NodeSet {
        let faulty: NodeSet = self.faults.iter().map(|&(v, _)| v).collect();
        self.graph.vertex_set() - faulty
    }

    /// The hull of the honest inputs (for validity checking).
    #[must_use]
    pub fn honest_input_range(&self) -> (f64, f64) {
        self.honest_set()
            .iter()
            .map(|v| self.inputs[v.index()])
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| (lo.min(v), hi.max(v)))
    }

    /// The round count protocols derived from ε and the range honour,
    /// unless overridden: the paper's termination bound (Section 4.6).
    #[must_use]
    pub fn rounds(&self) -> u32 {
        self.rounds_override
            .unwrap_or_else(|| num_rounds(self.range.1 - self.range.0, self.epsilon))
    }
}

/// Builder for [`Scenario`]. Obtain via [`Scenario::builder`].
#[derive(Clone)]
pub struct ScenarioBuilder {
    graph: Arc<Digraph>,
    f: usize,
    inputs: Vec<f64>,
    epsilon: f64,
    range: Option<(f64, f64)>,
    faults: Vec<(NodeId, FaultKind)>,
    link_faults: Option<LinkFaultPlan>,
    scheduler: SchedulerSpec,
    runtime: Runtime,
    rounds_override: Option<u32>,
    max_events: u64,
    record_trace: bool,
    stats: Option<Arc<StatsRegistry>>,
    protocol: Option<Arc<dyn Protocol>>,
}

impl std::fmt::Debug for ScenarioBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioBuilder")
            .field("nodes", &self.graph.node_count())
            .field("f", &self.f)
            .finish()
    }
}

impl ScenarioBuilder {
    /// Sets one input per node (fault nodes' entries are ignored).
    #[must_use]
    pub fn inputs(mut self, inputs: Vec<f64>) -> Self {
        self.inputs = inputs;
        self
    }

    /// Sets the agreement parameter ε (default 0.1).
    #[must_use]
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the a-priori known input range (default: the hull of the
    /// honest inputs).
    #[must_use]
    pub fn range(mut self, range: (f64, f64)) -> Self {
        self.range = Some(range);
        self
    }

    /// Sets or clears the a-priori input range — the sweep layer's axis
    /// application hook (`None` restores the derived honest-input hull).
    #[must_use]
    pub fn range_opt(mut self, range: Option<(f64, f64)>) -> Self {
        self.range = range;
        self
    }

    /// Assigns a fault behaviour to `v`.
    #[must_use]
    pub fn fault(mut self, v: NodeId, kind: FaultKind) -> Self {
        self.faults.push((v, kind));
        self
    }

    /// Assigns several fault behaviours at once.
    #[must_use]
    pub fn faults(mut self, faults: impl IntoIterator<Item = (NodeId, FaultKind)>) -> Self {
        self.faults.extend(faults);
        self
    }

    /// Attaches a deterministic link-fault plan (the chaos layer): seeded
    /// per-edge drop / duplicate / reorder / corrupt / partition / omit
    /// faults, honored identically by both runtimes.
    #[must_use]
    pub fn link_faults(mut self, plan: LinkFaultPlan) -> Self {
        self.link_faults = Some(plan);
        self
    }

    /// Sets or clears the link-fault plan — the sweep layer's axis
    /// application hook.
    #[must_use]
    pub fn link_faults_opt(mut self, plan: Option<LinkFaultPlan>) -> Self {
        self.link_faults = plan;
        self
    }

    /// Uses a seeded random schedule with delays in `[1, 20]`.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.scheduler = SchedulerSpec::Random { seed, min: 1, max: 20 };
        self
    }

    /// Uses an explicit scheduler spec.
    #[must_use]
    pub fn scheduler(mut self, spec: SchedulerSpec) -> Self {
        self.scheduler = spec;
        self
    }

    /// Selects the runtime (default: the deterministic simulator).
    #[must_use]
    pub fn runtime(mut self, runtime: Runtime) -> Self {
        self.runtime = runtime;
        self
    }

    /// Overrides the round count (default: the paper's termination bound).
    #[must_use]
    pub fn rounds(mut self, rounds: u32) -> Self {
        self.rounds_override = Some(rounds);
        self
    }

    /// Sets or clears the round override — the sweep layer's axis
    /// application hook (`None` restores the derived termination bound).
    #[must_use]
    pub fn rounds_opt(mut self, rounds: Option<u32>) -> Self {
        self.rounds_override = rounds;
        self
    }

    /// Caps the simulator's event budget.
    #[must_use]
    pub fn max_events(mut self, max_events: u64) -> Self {
        self.max_events = max_events;
        self
    }

    /// Records a delivery trace (Sim runtime only; see [`Outcome::trace`]).
    #[must_use]
    pub fn record_trace(mut self, record: bool) -> Self {
        self.record_trace = record;
        self
    }

    /// Attaches a live stats registry: the run feeds this registry
    /// instead of a private one, so any thread holding the same `Arc` can
    /// poll [`StatsRegistry::snapshot`] while the run is in flight (see
    /// the module-level ["Observe a live run"](self#observe-a-live-run)
    /// section). The registry must cover at least as many nodes as the
    /// graph; after the run, its snapshot equals [`Outcome::sim_stats`].
    #[must_use]
    pub fn stats(mut self, registry: Arc<StatsRegistry>) -> Self {
        self.stats = Some(registry);
        self
    }

    /// Selects the protocol (default: [`ByzantineWitness`]).
    #[must_use]
    pub fn protocol(mut self, protocol: impl Protocol + 'static) -> Self {
        self.protocol = Some(Arc::new(protocol));
        self
    }

    /// Selects a shared protocol handle (useful in sweeps).
    #[must_use]
    pub fn protocol_arc(mut self, protocol: Arc<dyn Protocol>) -> Self {
        self.protocol = Some(protocol);
        self
    }

    /// Validates the description and produces the [`Scenario`].
    ///
    /// # Errors
    ///
    /// * [`RunError::InputLengthMismatch`] — not one input per node;
    /// * [`RunError::NonPositiveEpsilon`] — `ε ≤ 0` or non-finite;
    /// * [`RunError::FaultOutsideGraph`] / [`RunError::DuplicateFault`] —
    ///   malformed fault assignment;
    /// * [`RunError::TooManyFaults`] — more faults than the bound `f`;
    /// * [`RunError::LinkFaultOutsideGraph`] /
    ///   [`RunError::InvalidLinkFault`] /
    ///   [`RunError::LinkFaultBudgetExceeded`] — malformed link-fault plan;
    /// * [`RunError::InvalidConfig`] — non-finite inputs, empty or
    ///   violated a-priori range, no honest nodes.
    pub fn build(self) -> Result<Scenario, RunError> {
        let n = self.graph.node_count();
        if self.inputs.len() != n {
            return Err(RunError::InputLengthMismatch { expected: n, got: self.inputs.len() });
        }
        if self.inputs.iter().any(|v| !v.is_finite()) {
            return Err(RunError::InvalidConfig { reason: "inputs must be finite".into() });
        }
        if !(self.epsilon > 0.0 && self.epsilon.is_finite()) {
            return Err(RunError::NonPositiveEpsilon { epsilon: self.epsilon });
        }
        let mut faulty = NodeSet::EMPTY;
        for &(v, _) in &self.faults {
            if v.index() >= n {
                return Err(RunError::FaultOutsideGraph { node: v.index(), nodes: n });
            }
            if !faulty.insert(v) {
                return Err(RunError::DuplicateFault { node: v.index() });
            }
        }
        if faulty.len() > self.f {
            return Err(RunError::TooManyFaults { configured: faulty.len(), f: self.f });
        }
        if faulty.len() == n {
            return Err(RunError::InvalidConfig { reason: "no honest nodes".into() });
        }
        if let Some(plan) = &self.link_faults {
            for (u, v, fault) in plan.faults() {
                if !self.graph.has_edge(*u, *v) {
                    return Err(RunError::LinkFaultOutsideGraph { from: u.index(), to: v.index() });
                }
                let invalid =
                    |reason| RunError::InvalidLinkFault { from: u.index(), to: v.index(), reason };
                match fault {
                    LinkFault::Drop { prob }
                    | LinkFault::Duplicate { prob }
                    | LinkFault::Corrupt { prob } => {
                        // `contains` is false for NaN, so this also rejects
                        // non-finite probabilities.
                        if !(0.0..=1.0).contains(prob) {
                            return Err(invalid("probability not in [0, 1]"));
                        }
                    }
                    LinkFault::Partition { from_step, to_step } => {
                        if from_step > to_step {
                            return Err(invalid("partition window is inverted"));
                        }
                    }
                    LinkFault::Reorder { .. } | LinkFault::Omit => {}
                }
            }
            if let Some(budget) = plan.budget() {
                let edges = plan.distinct_edges();
                if edges > budget {
                    return Err(RunError::LinkFaultBudgetExceeded { edges, budget });
                }
            }
        }
        let honest_inputs: Vec<f64> = self
            .inputs
            .iter()
            .enumerate()
            .filter(|(i, _)| !faulty.contains(NodeId::new(*i)))
            .map(|(_, &v)| v)
            .collect();
        let derived = honest_inputs
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)));
        let range = self.range.unwrap_or(derived);
        if range.0 > range.1 || !range.0.is_finite() || !range.1.is_finite() {
            return Err(RunError::InvalidConfig { reason: "invalid input range".into() });
        }
        if honest_inputs.iter().any(|&v| v < range.0 || v > range.1) {
            return Err(RunError::InvalidConfig {
                reason: "honest inputs fall outside the a-priori range".into(),
            });
        }
        Ok(Scenario {
            graph: self.graph,
            f: self.f,
            inputs: self.inputs,
            epsilon: self.epsilon,
            range,
            faults: self.faults,
            link_faults: self.link_faults,
            scheduler: self.scheduler,
            runtime: self.runtime,
            rounds_override: self.rounds_override,
            max_events: self.max_events,
            record_trace: self.record_trace,
            stats: self.stats,
            protocol: self.protocol.unwrap_or_else(|| Arc::new(ByzantineWitness::default())),
        })
    }

    /// Builds and runs in one step.
    ///
    /// # Errors
    ///
    /// As [`ScenarioBuilder::build`] and [`Scenario::run`].
    pub fn run(self) -> Result<Outcome, RunError> {
        self.build()?.run()
    }
}

// ---------------------------------------------------------------------------
// Outcome
// ---------------------------------------------------------------------------

/// One delivered message: when and along which edge (the payload stays
/// protocol-internal).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// Virtual delivery time.
    pub at: VirtualTime,
    /// Authenticated sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
}

/// A protocol-agnostic delivery trace: the global delivery order with
/// payloads erased, recorded when [`ScenarioBuilder::record_trace`] is set
/// and the runtime is [`Runtime::Sim`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Every delivery, in execution order.
    pub deliveries: Vec<Delivery>,
}

/// The unified result of any scenario run.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Name of the protocol that produced this outcome.
    pub protocol: &'static str,
    /// Per node: the decided output (`None` for faulty nodes and for
    /// honest nodes that could not progress — e.g. when the graph violates
    /// the protocol's condition).
    pub outputs: Vec<Option<f64>>,
    /// The honest node set.
    pub honest: NodeSet,
    /// Agreement parameter of the run.
    pub epsilon: f64,
    /// The hull of the honest inputs (for validity checking).
    pub honest_input_range: (f64, f64),
    /// Rounds each node was configured to execute.
    pub rounds: u32,
    /// The merged statistics of the run: the final snapshot of the run's
    /// [`StatsRegistry`]. One schema on every runtime — transport
    /// counters by [`MsgClass`], protocol progress counters, per-node
    /// queue/done gauges — with quantities a runtime genuinely cannot
    /// measure reported as typed [`Coverage::NotObservable`] markers
    /// instead of silent zeros. When the scenario attached a registry via
    /// [`ScenarioBuilder::stats`], this equals that registry's post-run
    /// snapshot bit-for-bit.
    pub sim_stats: StatsSnapshot,
    /// Honest nodes the threaded runtime's watchdog gave up on, each with
    /// a typed reason (timeout, panic, starvation). Always empty under
    /// [`Runtime::Sim`], which runs to quiescence instead. Survivors'
    /// outputs are still extracted and scored — degradation is data.
    pub incomplete: Vec<Incomplete>,
    /// Per node: the state-value trajectory (honest nodes only).
    pub histories: Vec<Option<Vec<f64>>>,
    /// Protocol-level messages sent by honest nodes, where the protocol
    /// counts them itself (AAD04's E9 metric); `None` otherwise.
    pub honest_messages: Option<u64>,
    /// The recorded delivery trace, if requested.
    pub trace: Option<TraceSummary>,
    /// Whether the topology's correctness condition was *certified* by a
    /// polynomial sufficient rule
    /// ([`dbac_conditions::robustness::certification`]). Populated by
    /// protocols whose condition has certificate machinery (today: the
    /// iterative W-MSR baseline, whose condition is
    /// `(f+1, f+1)`-robustness); `None` where certification does not
    /// apply. An `Uncertified` value is a warning, not a failure — the
    /// run proceeded on unproven topology.
    pub certification: Option<dbac_conditions::robustness::CertificationStatus>,
}

impl Outcome {
    /// The decided honest outputs (skips undecided nodes).
    #[must_use]
    pub fn honest_outputs(&self) -> Vec<f64> {
        self.honest.iter().filter_map(|v| self.outputs[v.index()]).collect()
    }

    /// True when the run degraded: at least one honest node missed its
    /// watchdog deadline (see [`Outcome::incomplete`]).
    #[must_use]
    pub fn degraded(&self) -> bool {
        !self.incomplete.is_empty()
    }

    /// Returns `true` if every honest node decided.
    #[must_use]
    pub fn all_decided(&self) -> bool {
        self.honest.iter().all(|v| self.outputs[v.index()].is_some())
    }

    /// Max − min over decided honest outputs (0 when fewer than two).
    #[must_use]
    pub fn spread(&self) -> f64 {
        let outs = self.honest_outputs();
        if outs.len() < 2 {
            return 0.0;
        }
        outs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - outs.iter().cloned().fold(f64::INFINITY, f64::min)
    }

    /// Convergence (Definition 1.1): all honest nodes decided within ε.
    #[must_use]
    pub fn converged(&self) -> bool {
        self.all_decided() && self.spread() < self.epsilon
    }

    /// Validity (Definition 1.2): every decided output lies in the hull of
    /// the honest inputs.
    #[must_use]
    pub fn valid(&self) -> bool {
        let (lo, hi) = self.honest_input_range;
        self.honest_outputs().iter().all(|&v| v >= lo - 1e-12 && v <= hi + 1e-12)
    }

    /// The per-round honest spread `U[r] − µ[r]`, for the convergence
    /// experiments (Lemma 15: it at least halves every round).
    #[must_use]
    pub fn spread_by_round(&self) -> Vec<f64> {
        let histories: Vec<&Vec<f64>> =
            self.honest.iter().filter_map(|v| self.histories[v.index()].as_ref()).collect();
        if histories.is_empty() {
            return Vec::new();
        }
        let rounds = histories.iter().map(|h| h.len()).min().unwrap_or(0);
        (0..rounds)
            .map(|r| {
                let vals = histories.iter().map(|h| h[r]);
                let hi = vals.clone().fold(f64::NEG_INFINITY, f64::max);
                let lo = vals.fold(f64::INFINITY, f64::min);
                hi - lo
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// The runtime driver
// ---------------------------------------------------------------------------

/// The fault slots of a fleet handed to [`drive`]: one boxed adversary per
/// fault node.
pub type Adversaries<M> = Vec<(NodeId, Box<dyn Adversary<M> + Send>)>;

/// What [`drive`] hands back to a protocol implementation: runtime
/// counters, the optional delivery trace, and the stragglers of a
/// gracefully-degraded threaded run.
#[derive(Clone, Debug, Default)]
pub struct DriveReport {
    /// The final merged snapshot of the run's [`StatsRegistry`].
    pub stats: StatsSnapshot,
    /// Recorded delivery trace ([`Runtime::Sim`] only, when requested).
    pub trace: Option<TraceSummary>,
    /// Honest nodes that failed to complete, with typed reasons
    /// ([`Runtime::Threaded`] only — the simulator runs to quiescence).
    pub incomplete: Vec<Incomplete>,
}

/// Drives a fully-assigned process fleet on the scenario's runtime — the
/// single place in the workspace that constructs [`Simulation`] or
/// [`Threaded`]. Protocol implementations hand it the run's stats
/// registry (from [`Scenario::resolve_stats`], so an externally attached
/// registry is honored), one actor per node (honest processes plus boxed
/// adversaries covering every fault slot) and an `extract` callback
/// invoked with each surviving honest process after the run.
///
/// `drive` attaches the registry to the runtime, freezes the wall clock
/// when the run lands, and returns the final merged snapshot in
/// [`DriveReport::stats`].
///
/// `done` is the per-node termination predicate the threaded and network
/// runtimes poll (the simulator instead runs to quiescence).
///
/// All three runtimes honor the scenario's [`LinkFaultPlan`], if any,
/// through the same seeded decision function. A threaded or network node
/// that misses its watchdog deadline is *not* an error: it lands in
/// [`DriveReport::incomplete`] and every survivor is still extracted.
///
/// The `P::Message: WireMessage` bound is what lets one fleet run on any
/// runtime: every drivable protocol message carries a canonical binary
/// wire form, even when the selected runtime never serializes it.
///
/// # Errors
///
/// [`RunError::Sim`] on unassigned nodes, event-budget exhaustion, or
/// network-transport setup failure.
pub fn drive<P>(
    scenario: &Scenario,
    registry: &Arc<StatsRegistry>,
    honest: Vec<(NodeId, P)>,
    byzantine: Adversaries<P::Message>,
    done: fn(&P) -> bool,
    extract: &mut dyn FnMut(NodeId, &P),
) -> Result<DriveReport, RunError>
where
    P: Process + Send + 'static,
    P::Message: WireMessage,
{
    let (trace, incomplete) = match scenario.runtime {
        Runtime::Sim => {
            let mut sim: Simulation<P> =
                Simulation::new(Arc::clone(&scenario.graph), scenario.scheduler.build());
            sim.set_max_events(scenario.max_events);
            sim.set_stats(Arc::clone(registry));
            if scenario.record_trace {
                sim.record_trace();
            }
            if let Some(plan) = &scenario.link_faults {
                sim.set_link_faults(plan.clone());
            }
            let mut honest_ids = Vec::with_capacity(honest.len());
            for (v, p) in honest {
                honest_ids.push(v);
                sim.set_honest(v, p);
            }
            for (v, a) in byzantine {
                sim.set_byzantine(v, a);
            }
            sim.run()?;
            // The simulator has no in-loop done polling (it runs to
            // quiescence), so the done gauges are settled here instead.
            let gauge = registry.register();
            for v in honest_ids {
                let node = sim.honest(v).expect("honest node present");
                if done(node) {
                    gauge.mark_done(v.index());
                }
                extract(v, node);
            }
            let trace = sim.trace().map(|t| TraceSummary {
                deliveries: t
                    .events()
                    .iter()
                    .map(|e| Delivery { at: e.at, from: e.from, to: e.to })
                    .collect(),
            });
            (trace, Vec::new())
        }
        Runtime::Threaded { timeout, jitter_micros } => {
            let mut runtime: Threaded<P> = Threaded::new(Arc::clone(&scenario.graph));
            runtime.set_stats(Arc::clone(registry));
            for (v, p) in honest {
                runtime.set_honest(v, p);
            }
            for (v, a) in byzantine {
                runtime.set_byzantine(v, a);
            }
            if let Some(plan) = &scenario.link_faults {
                runtime.set_link_faults(plan.clone());
            }
            let config = ThreadedConfig { timeout, jitter_micros, seed: scenario.scheduler.seed() };
            let report = runtime.run(done, config)?;
            for (i, node) in report.nodes.iter().enumerate() {
                if let Some(node) = node {
                    extract(NodeId::new(i), node);
                }
            }
            (None, report.incomplete)
        }
        Runtime::Net { timeout } => {
            let mut runtime: Net<P> = Net::new(Arc::clone(&scenario.graph));
            runtime.set_stats(Arc::clone(registry));
            for (v, p) in honest {
                runtime.set_honest(v, p);
            }
            for (v, a) in byzantine {
                runtime.set_byzantine(v, a);
            }
            if let Some(plan) = &scenario.link_faults {
                runtime.set_link_faults(plan.clone());
            }
            let config = NetConfig { timeout, transport: TransportKind::Auto };
            let report = runtime.run(done, config)?;
            for (i, node) in report.nodes.iter().enumerate() {
                if let Some(node) = node {
                    extract(NodeId::new(i), node);
                }
            }
            (None, report.incomplete)
        }
    };
    registry.finalize_wall();
    Ok(DriveReport { stats: registry.snapshot(), trace, incomplete })
}

// ---------------------------------------------------------------------------
// Core protocol implementations
// ---------------------------------------------------------------------------

/// The paper's **Algorithm BW** (Byzantine Witness): RedundantFlood,
/// per-guess witness threads with Maximal-Consistency, FIFO-Receive-All,
/// and Filter-and-Average. Correct under 3-reach (Theorem 4); on violating
/// graphs honest nodes may stall, reported via [`Outcome::all_decided`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ByzantineWitness {
    /// Value-flood path discipline (default: redundant, as in the paper;
    /// `SimpleOnly` is the E11b ablation).
    pub flood_mode: FloodMode,
    /// Path-enumeration budget for the topology precomputation.
    pub budget: PathBudget,
}

impl ByzantineWitness {
    /// The paper's configuration with a custom flood mode.
    #[must_use]
    pub fn with_flood_mode(mut self, mode: FloodMode) -> Self {
        self.flood_mode = mode;
        self
    }

    /// Overrides the path-enumeration budget.
    #[must_use]
    pub fn with_budget(mut self, budget: PathBudget) -> Self {
        self.budget = budget;
        self
    }
}

impl Protocol for ByzantineWitness {
    fn name(&self) -> &'static str {
        "byzantine-witness"
    }

    fn check(&self, scenario: &Scenario) -> Result<(), RunError> {
        for (_, kind) in scenario.faults() {
            if kind.adversary_kind().is_none() {
                return Err(RunError::UnsupportedFault {
                    protocol: self.name(),
                    fault: kind.label(),
                });
            }
        }
        Ok(())
    }

    fn execute(&self, scenario: &Scenario) -> Result<Outcome, RunError> {
        let topo = Arc::new(Topology::new(
            scenario.graph().clone(),
            scenario.f(),
            self.flood_mode,
            self.budget,
        )?);
        let mut config = ProtocolConfig::new(scenario.f(), scenario.epsilon(), scenario.range())
            .with_flood_mode(self.flood_mode);
        if let Some(r) = scenario.rounds_override() {
            config = config.with_rounds(r);
        }
        let registry = scenario.resolve_stats();
        let honest_set = scenario.honest_set();
        let honest: Vec<(NodeId, HonestNode)> = honest_set
            .iter()
            .map(|v| {
                (
                    v,
                    HonestNode::new(Arc::clone(&topo), config, v, scenario.inputs()[v.index()])
                        .with_stats(registry.register()),
                )
            })
            .collect();
        let byzantine = scenario
            .faults()
            .iter()
            .map(|(v, kind)| {
                let kind = kind.adversary_kind().expect("checked");
                (*v, kind.build(Arc::clone(&topo), *v, config.rounds))
            })
            .collect();
        let n = scenario.graph().node_count();
        let mut outputs = vec![None; n];
        let mut histories = vec![None; n];
        let report =
            drive(scenario, &registry, honest, byzantine, HonestNode::is_done, &mut |v, node| {
                outputs[v.index()] = node.output();
                histories[v.index()] = Some(node.x_history().to_vec());
            })?;
        Ok(Outcome {
            protocol: self.name(),
            outputs,
            honest: honest_set,
            epsilon: scenario.epsilon(),
            honest_input_range: scenario.honest_input_range(),
            rounds: config.rounds,
            sim_stats: report.stats,
            incomplete: report.incomplete,
            histories,
            honest_messages: None,
            trace: report.trace,
            certification: None,
        })
    }
}

/// The asynchronous **crash**-tolerant protocol under 2-reach (Table 2's
/// other asynchronous cell, Tseng–Vaidya 2012): simple-path value floods,
/// per-guess fullness threads, midpoint updates. Supports
/// [`FaultKind::Crash`] and [`FaultKind::CrashAfter`] only — with crash
/// faults nobody lies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CrashTwoReach {
    /// Path-enumeration budget for the simple-path population.
    pub budget: PathBudget,
}

impl CrashTwoReach {
    /// Overrides the path-enumeration budget.
    #[must_use]
    pub fn with_budget(mut self, budget: PathBudget) -> Self {
        self.budget = budget;
        self
    }
}

impl Protocol for CrashTwoReach {
    fn name(&self) -> &'static str {
        "crash-two-reach"
    }

    fn check(&self, scenario: &Scenario) -> Result<(), RunError> {
        for (_, kind) in scenario.faults() {
            if !matches!(kind, FaultKind::Crash | FaultKind::CrashAfter { .. }) {
                return Err(RunError::UnsupportedFault {
                    protocol: self.name(),
                    fault: kind.label(),
                });
            }
        }
        Ok(())
    }

    fn execute(&self, scenario: &Scenario) -> Result<Outcome, RunError> {
        let topo =
            Arc::new(CrashTopology::new(scenario.graph().clone(), scenario.f(), self.budget)?);
        let rounds = scenario.rounds();
        let make_node = |v: NodeId| {
            CrashNode::new(
                Arc::clone(&topo),
                v,
                scenario.inputs()[v.index()],
                scenario.epsilon(),
                scenario.range(),
            )
            .with_rounds(rounds)
        };
        let registry = scenario.resolve_stats();
        let honest_set = scenario.honest_set();
        let honest: Vec<(NodeId, CrashNode)> =
            honest_set.iter().map(|v| (v, make_node(v))).collect();
        let byzantine = scenario
            .faults()
            .iter()
            .map(|&(v, ref kind)| {
                let sends = match kind {
                    FaultKind::Crash => 0,
                    FaultKind::CrashAfter { sends } => *sends,
                    _ => unreachable!("checked"),
                };
                let boxed: Box<dyn Adversary<crate::crash::CrashMsg> + Send> =
                    Box::new(CrashAfter::new(make_node(v), sends));
                (v, boxed)
            })
            .collect();
        let n = scenario.graph().node_count();
        let mut outputs = vec![None; n];
        let mut histories = vec![None; n];
        let report =
            drive(scenario, &registry, honest, byzantine, CrashNode::is_done, &mut |v, node| {
                outputs[v.index()] = node.output();
                histories[v.index()] = Some(node.x_history().to_vec());
            })?;
        Ok(Outcome {
            protocol: self.name(),
            outputs,
            honest: honest_set,
            epsilon: scenario.epsilon(),
            honest_input_range: scenario.honest_input_range(),
            rounds,
            sim_stats: report.stats,
            incomplete: report.incomplete,
            histories,
            honest_messages: None,
            trace: report.trace,
            certification: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbac_graph::generators;

    fn id(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn typed_validation_errors() {
        let g = generators::clique(3);
        // Wrong input count.
        assert_eq!(
            Scenario::builder(g.clone(), 1).inputs(vec![1.0]).build().unwrap_err(),
            RunError::InputLengthMismatch { expected: 3, got: 1 }
        );
        // Bad epsilon.
        assert_eq!(
            Scenario::builder(g.clone(), 1).inputs(vec![0.0; 3]).epsilon(0.0).build().unwrap_err(),
            RunError::NonPositiveEpsilon { epsilon: 0.0 }
        );
        // Fault outside the graph.
        assert_eq!(
            Scenario::builder(g.clone(), 1)
                .inputs(vec![0.0; 3])
                .fault(id(7), FaultKind::Crash)
                .build()
                .unwrap_err(),
            RunError::FaultOutsideGraph { node: 7, nodes: 3 }
        );
        // Duplicate fault.
        assert_eq!(
            Scenario::builder(g.clone(), 2)
                .inputs(vec![0.0; 3])
                .fault(id(0), FaultKind::Crash)
                .fault(id(0), FaultKind::ConstantLiar { value: 1.0 })
                .build()
                .unwrap_err(),
            RunError::DuplicateFault { node: 0 }
        );
        // Too many faults.
        assert_eq!(
            Scenario::builder(g.clone(), 0)
                .inputs(vec![0.0; 3])
                .fault(id(0), FaultKind::Crash)
                .build()
                .unwrap_err(),
            RunError::TooManyFaults { configured: 1, f: 0 }
        );
        // Honest input outside the declared range.
        assert!(matches!(
            Scenario::builder(g, 1).inputs(vec![0.0, 5.0, 99.0]).range((0.0, 10.0)).build(),
            Err(RunError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn bw_scenario_converges_and_is_valid() {
        let out = Scenario::builder(generators::clique(4), 1)
            .inputs(vec![0.0, 10.0, 2.0, 8.0])
            .epsilon(0.5)
            .seed(11)
            .protocol(ByzantineWitness::default())
            .run()
            .unwrap();
        assert_eq!(out.protocol, "byzantine-witness");
        assert!(out.all_decided());
        assert!(out.converged(), "outputs {:?}", out.outputs);
        assert!(out.valid());
        assert_eq!(out.rounds, 5);
        let spreads = out.spread_by_round();
        assert_eq!(spreads.len(), 6);
        assert_eq!(spreads[0], 10.0);
        assert!(spreads[5] < 0.5);
        assert!(out.trace.is_none(), "trace not requested");
    }

    #[test]
    fn bw_crash_fault_tolerated_on_k4() {
        let out = Scenario::builder(generators::clique(4), 1)
            .inputs(vec![0.0, 10.0, 2.0, 0.0])
            .epsilon(1.0)
            .fault(id(3), FaultKind::Crash)
            .seed(3)
            .run()
            .unwrap();
        assert!(out.converged(), "outputs {:?}", out.outputs);
        assert!(out.valid());
        assert!(out.outputs[3].is_none());
    }

    #[test]
    fn bw_constant_liar_cannot_break_validity_on_k4() {
        let out = Scenario::builder(generators::clique(4), 1)
            .inputs(vec![2.0, 4.0, 6.0, 0.0])
            .epsilon(0.5)
            .fault(id(3), FaultKind::ConstantLiar { value: 1_000.0 })
            .seed(17)
            .run()
            .unwrap();
        assert!(out.converged(), "outputs {:?}", out.outputs);
        assert!(out.valid(), "liar dragged outputs outside [2, 6]: {:?}", out.outputs);
    }

    #[test]
    fn bw_spread_by_round_halves() {
        let out = Scenario::builder(generators::clique(4), 1)
            .inputs(vec![0.0, 16.0, 4.0, 12.0])
            .epsilon(0.25)
            .seed(23)
            .run()
            .unwrap();
        let spreads = out.spread_by_round();
        for w in spreads.windows(2) {
            assert!(w[1] <= w[0] / 2.0 + 1e-12, "halving violated: {spreads:?}");
        }
    }

    #[test]
    fn bw_rejects_inexpressible_faults() {
        let err = Scenario::builder(generators::clique(4), 1)
            .inputs(vec![0.0; 4])
            .fault(id(3), FaultKind::Ramp { base: 0.0, slope: 1.0 })
            .run()
            .unwrap_err();
        assert_eq!(
            err,
            RunError::UnsupportedFault { protocol: "byzantine-witness", fault: "ramp" }
        );
    }

    #[test]
    fn crash_protocol_scenario_with_mid_run_crash() {
        let out = Scenario::builder(generators::clique(4), 1)
            .inputs(vec![0.0, 8.0, 4.0, 2.0])
            .epsilon(0.5)
            .range((0.0, 8.0))
            .fault(id(1), FaultKind::CrashAfter { sends: 3 })
            .scheduler(SchedulerSpec::Random { seed: 3, min: 1, max: 15 })
            .protocol(CrashTwoReach::default())
            .run()
            .unwrap();
        assert_eq!(out.protocol, "crash-two-reach");
        assert!(out.converged(), "{:?}", out.outputs);
        assert!(out.valid());
        assert!(out.outputs[1].is_none());
    }

    #[test]
    fn crash_protocol_rejects_byzantine_faults() {
        let err = Scenario::builder(generators::clique(3), 1)
            .inputs(vec![0.0; 3])
            .fault(id(2), FaultKind::ConstantLiar { value: 9.0 })
            .protocol(CrashTwoReach::default())
            .run()
            .unwrap_err();
        assert_eq!(
            err,
            RunError::UnsupportedFault { protocol: "crash-two-reach", fault: "constant-liar" }
        );
    }

    #[test]
    fn edge_delay_scheduler_reaches_the_policy() {
        // A huge delay on every edge into node 2 stalls its deliveries;
        // with Fixed(1) elsewhere the run still quiesces and the trace
        // shows nothing arriving at node 2 before the override delay.
        let g = generators::clique(3);
        let overrides =
            vec![(id(0), id(2), 1_000_000), (id(1), id(2), 1_000_000), (id(2), id(0), 7)];
        let out = Scenario::builder(g, 0)
            .inputs(vec![1.0, 2.0, 3.0])
            .epsilon(0.5)
            .scheduler(SchedulerSpec::EdgeDelays {
                base: Box::new(SchedulerSpec::Fixed(1)),
                overrides,
            })
            .record_trace(true)
            .protocol(CrashTwoReach::default())
            .run()
            .unwrap();
        let trace = out.trace.expect("trace recorded");
        assert!(!trace.deliveries.is_empty());
        for d in &trace.deliveries {
            if d.to == id(2) {
                assert!(d.at.ticks() >= 1_000_000, "delayed edge delivered early at {:?}", d.at);
            }
        }
    }

    #[test]
    fn trace_recording_round_trips() {
        let out = Scenario::builder(generators::clique(3), 0)
            .inputs(vec![0.0, 4.0, 2.0])
            .epsilon(0.5)
            .record_trace(true)
            .protocol(ByzantineWitness::default())
            .run()
            .unwrap();
        let trace = out.trace.expect("requested");
        assert_eq!(trace.deliveries.len() as u64, out.sim_stats.messages_delivered());
    }

    #[test]
    fn scheduler_seed_extraction() {
        assert_eq!(SchedulerSpec::Fixed(3).seed(), 0);
        assert_eq!(SchedulerSpec::Random { seed: 9, min: 1, max: 2 }.seed(), 9);
        let nested = SchedulerSpec::EdgeDelays {
            base: Box::new(SchedulerSpec::Random { seed: 5, min: 1, max: 4 }),
            overrides: vec![],
        };
        assert_eq!(nested.seed(), 5);
    }

    #[test]
    fn default_protocol_is_byzantine_witness() {
        let scn = Scenario::builder(generators::clique(3), 0).inputs(vec![0.0; 3]).build().unwrap();
        assert_eq!(scn.protocol().name(), "byzantine-witness");
    }

    #[test]
    fn link_fault_validation_is_typed() {
        let base = || Scenario::builder(generators::directed_cycle(3), 0).inputs(vec![0.0; 3]);
        // Edge not in the graph (the cycle has 0 -> 1 but not 1 -> 0).
        assert_eq!(
            base()
                .link_faults(LinkFaultPlan::new(0).fault(id(1), id(0), LinkFault::Omit))
                .build()
                .unwrap_err(),
            RunError::LinkFaultOutsideGraph { from: 1, to: 0 }
        );
        // Probability outside [0, 1] (NaN included).
        for bad in [-0.1, 1.5, f64::NAN] {
            assert_eq!(
                base()
                    .link_faults(LinkFaultPlan::new(0).fault(
                        id(0),
                        id(1),
                        LinkFault::Drop { prob: bad }
                    ))
                    .build()
                    .unwrap_err(),
                RunError::InvalidLinkFault { from: 0, to: 1, reason: "probability not in [0, 1]" }
            );
        }
        // Inverted partition window.
        assert_eq!(
            base()
                .link_faults(LinkFaultPlan::new(0).fault(
                    id(0),
                    id(1),
                    LinkFault::Partition { from_step: 9, to_step: 3 }
                ))
                .build()
                .unwrap_err(),
            RunError::InvalidLinkFault { from: 0, to: 1, reason: "partition window is inverted" }
        );
        // Budget counts distinct edges.
        assert_eq!(
            base()
                .link_faults(
                    LinkFaultPlan::new(0)
                        .with_budget(1)
                        .fault(id(0), id(1), LinkFault::Omit)
                        .fault(id(1), id(2), LinkFault::Omit)
                )
                .build()
                .unwrap_err(),
            RunError::LinkFaultBudgetExceeded { edges: 2, budget: 1 }
        );
        // Two faults on one edge fit a budget of one edge.
        assert!(base()
            .link_faults(
                LinkFaultPlan::new(0)
                    .with_budget(1)
                    .fault(id(0), id(1), LinkFault::Drop { prob: 0.5 })
                    .fault(id(0), id(1), LinkFault::Reorder { window: 4 })
            )
            .build()
            .is_ok());
    }

    #[test]
    fn chaos_scenario_reports_drops_and_stays_valid() {
        let out =
            Scenario::builder(generators::clique(4), 0)
                .inputs(vec![0.0, 10.0, 4.0, 6.0])
                .epsilon(0.5)
                .seed(2)
                .link_faults(
                    LinkFaultPlan::new(77)
                        .fault(id(0), id(1), LinkFault::Drop { prob: 0.5 })
                        .fault(id(2), id(3), LinkFault::Omit),
                )
                .protocol(ByzantineWitness::default())
                .run()
                .unwrap();
        assert!(out.sim_stats.messages_dropped() > 0);
        assert!(out.valid(), "deciders must stay in the honest hull");
        assert!(out.incomplete.is_empty(), "the simulator runs to quiescence");
        assert!(!out.degraded());
    }

    #[test]
    fn chaos_replay_is_bit_identical() {
        let run = || {
            Scenario::builder(generators::clique(4), 0)
                .inputs(vec![0.0, 10.0, 4.0, 6.0])
                .epsilon(0.5)
                .seed(9)
                .record_trace(true)
                .link_faults(
                    LinkFaultPlan::new(5)
                        .fault(id(0), id(1), LinkFault::Drop { prob: 0.3 })
                        .fault(id(1), id(2), LinkFault::Duplicate { prob: 0.3 })
                        .fault(id(2), id(3), LinkFault::Reorder { window: 7 }),
                )
                .protocol(CrashTwoReach::default())
                .run()
                .unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.histories, b.histories);
        // Everything but the wall clock replays bit-identically.
        assert_eq!(a.sim_stats.transport, b.sim_stats.transport);
        assert_eq!(a.sim_stats.protocol, b.sim_stats.protocol);
        assert_eq!(a.sim_stats.nodes, b.sim_stats.nodes);
        assert_eq!(a.sim_stats.virtual_time, b.sim_stats.virtual_time);
        assert_eq!(a.trace, b.trace);
    }
}
