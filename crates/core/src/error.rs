//! Error types for protocol configuration and runs.

use dbac_graph::GraphError;
use dbac_sim::SimError;
use std::error::Error;
use std::fmt;

/// Errors building or executing a consensus run.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum RunError {
    /// The configuration was inconsistent (wrong input count, bad ε, …).
    InvalidConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// More Byzantine nodes were configured than the fault bound `f`.
    TooManyFaults {
        /// Configured faulty nodes.
        configured: usize,
        /// The bound `f`.
        f: usize,
    },
    /// Topology precomputation failed (typically: path enumeration budget).
    Graph(GraphError),
    /// The underlying runtime failed (event budget, timeout, …).
    Sim(SimError),
    /// An honest node failed to produce an output although the runtime
    /// quiesced — the graph most likely violates 3-reach, so the algorithm
    /// (correctly) cannot guarantee progress.
    NoOutput {
        /// Index of the stuck node.
        node: usize,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            RunError::TooManyFaults { configured, f: bound } => {
                write!(f, "{configured} Byzantine nodes exceed the fault bound f = {bound}")
            }
            RunError::Graph(e) => write!(f, "topology precomputation failed: {e}"),
            RunError::Sim(e) => write!(f, "runtime failure: {e}"),
            RunError::NoOutput { node } => {
                write!(f, "node {node} produced no output (does the graph satisfy 3-reach?)")
            }
        }
    }
}

impl Error for RunError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RunError::Graph(e) => Some(e),
            RunError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for RunError {
    fn from(e: GraphError) -> Self {
        RunError::Graph(e)
    }
}

impl From<SimError> for RunError {
    fn from(e: SimError) -> Self {
        RunError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = RunError::from(GraphError::EmptyGraph);
        assert!(e.to_string().contains("topology"));
        assert!(e.source().is_some());
        let e = RunError::TooManyFaults { configured: 2, f: 1 };
        assert!(e.to_string().contains("f = 1"));
        assert!(e.source().is_none());
    }
}
