//! Error types for protocol configuration and runs.

use dbac_graph::GraphError;
use dbac_sim::SimError;
use std::error::Error;
use std::fmt;

/// Errors building or executing a consensus run.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum RunError {
    /// The configuration was inconsistent (wrong input count, bad ε, …).
    InvalidConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// More Byzantine nodes were configured than the fault bound `f`.
    TooManyFaults {
        /// Configured faulty nodes.
        configured: usize,
        /// The bound `f`.
        f: usize,
    },
    /// The input vector's length does not match the node count.
    InputLengthMismatch {
        /// One input per node is required.
        expected: usize,
        /// What the scenario supplied.
        got: usize,
    },
    /// The agreement parameter must be strictly positive (and finite).
    NonPositiveEpsilon {
        /// The rejected value.
        epsilon: f64,
    },
    /// A fault assignment names a node outside the graph.
    FaultOutsideGraph {
        /// The out-of-range node index.
        node: usize,
        /// Number of nodes in the graph.
        nodes: usize,
    },
    /// The same node was assigned two fault behaviours.
    DuplicateFault {
        /// The doubly-assigned node index.
        node: usize,
    },
    /// A link fault names an edge the graph does not contain.
    LinkFaultOutsideGraph {
        /// Source node index of the missing edge.
        from: usize,
        /// Target node index of the missing edge.
        to: usize,
    },
    /// A link fault's parameters are malformed (probability outside
    /// `[0, 1]`, inverted partition window, …).
    InvalidLinkFault {
        /// Source node index of the offending edge.
        from: usize,
        /// Target node index of the offending edge.
        to: usize,
        /// What is wrong with the fault.
        reason: &'static str,
    },
    /// A link-fault plan touches more distinct edges than its declared
    /// budget allows.
    LinkFaultBudgetExceeded {
        /// Distinct edges the plan touches.
        edges: usize,
        /// The declared budget.
        budget: usize,
    },
    /// The selected protocol cannot express the requested fault behaviour.
    UnsupportedFault {
        /// Protocol name (see `Protocol::name`).
        protocol: &'static str,
        /// Display label of the rejected [`FaultKind`](crate::scenario::FaultKind).
        fault: &'static str,
    },
    /// The selected protocol cannot execute on the requested runtime.
    UnsupportedRuntime {
        /// Protocol name.
        protocol: &'static str,
        /// Runtime name (see `Runtime::name`).
        runtime: &'static str,
    },
    /// The protocol's resilience bound rejects this `(n, f)` pair — `f`
    /// exceeds what the protocol tolerates on this network.
    ResilienceExceeded {
        /// Protocol name.
        protocol: &'static str,
        /// Network size.
        n: usize,
        /// Requested fault bound.
        f: usize,
        /// Human-readable statement of the bound (e.g. `"n > 3f"`).
        requires: &'static str,
    },
    /// The protocol runs on complete networks only.
    IncompleteGraph {
        /// Protocol name.
        protocol: &'static str,
    },
    /// Topology precomputation failed (typically: path enumeration budget).
    Graph(GraphError),
    /// The underlying runtime failed (event budget, timeout, …).
    Sim(SimError),
    /// An honest node failed to produce an output although the runtime
    /// quiesced — the graph most likely violates 3-reach, so the algorithm
    /// (correctly) cannot guarantee progress.
    NoOutput {
        /// Index of the stuck node.
        node: usize,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            RunError::TooManyFaults { configured, f: bound } => {
                write!(f, "{configured} Byzantine nodes exceed the fault bound f = {bound}")
            }
            RunError::InputLengthMismatch { expected, got } => {
                write!(f, "expected {expected} inputs (one per node), got {got}")
            }
            RunError::NonPositiveEpsilon { epsilon } => {
                write!(f, "epsilon must be positive and finite, got {epsilon}")
            }
            RunError::FaultOutsideGraph { node, nodes } => {
                write!(f, "fault assigned to node {node}, but the graph has only {nodes} nodes")
            }
            RunError::DuplicateFault { node } => {
                write!(f, "node {node} was assigned two fault behaviours")
            }
            RunError::LinkFaultOutsideGraph { from, to } => {
                write!(f, "link fault on edge {from} -> {to}, which the graph does not contain")
            }
            RunError::InvalidLinkFault { from, to, reason } => {
                write!(f, "invalid link fault on edge {from} -> {to}: {reason}")
            }
            RunError::LinkFaultBudgetExceeded { edges, budget } => {
                write!(f, "link-fault plan touches {edges} edges, exceeding its budget {budget}")
            }
            RunError::UnsupportedFault { protocol, fault } => {
                write!(f, "protocol {protocol} cannot express the fault kind {fault}")
            }
            RunError::UnsupportedRuntime { protocol, runtime } => {
                write!(f, "protocol {protocol} cannot execute on the {runtime} runtime")
            }
            RunError::ResilienceExceeded { protocol, n, f: bound, requires } => {
                write!(
                    f,
                    "protocol {protocol} requires {requires}; n = {n}, f = {bound} violates it"
                )
            }
            RunError::IncompleteGraph { protocol } => {
                write!(f, "protocol {protocol} runs on complete networks only")
            }
            RunError::Graph(e) => write!(f, "topology precomputation failed: {e}"),
            RunError::Sim(e) => write!(f, "runtime failure: {e}"),
            RunError::NoOutput { node } => {
                write!(f, "node {node} produced no output (does the graph satisfy 3-reach?)")
            }
        }
    }
}

impl Error for RunError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RunError::Graph(e) => Some(e),
            RunError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for RunError {
    fn from(e: GraphError) -> Self {
        RunError::Graph(e)
    }
}

impl From<SimError> for RunError {
    fn from(e: SimError) -> Self {
        RunError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = RunError::from(GraphError::EmptyGraph);
        assert!(e.to_string().contains("topology"));
        assert!(e.source().is_some());
        let e = RunError::TooManyFaults { configured: 2, f: 1 };
        assert!(e.to_string().contains("f = 1"));
        assert!(e.source().is_none());
    }

    #[test]
    fn link_fault_variants_display() {
        let e = RunError::LinkFaultOutsideGraph { from: 2, to: 5 };
        assert!(e.to_string().contains("2 -> 5"));
        let e =
            RunError::InvalidLinkFault { from: 0, to: 1, reason: "probability 2 not in [0, 1]" };
        assert!(e.to_string().contains("probability"));
        let e = RunError::LinkFaultBudgetExceeded { edges: 4, budget: 2 };
        assert!(e.to_string().contains("budget 2"));
    }
}
