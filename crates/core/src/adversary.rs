//! Byzantine behaviour library.
//!
//! Each strategy implements [`Adversary`] over [`ProtocolMsg`]. The model
//! boundary (Section 2): a faulty node fully controls what it sends over
//! its own out-edges — including fabricated protocol messages with
//! arbitrary (but well-formed) propagation paths ending at itself — but it
//! cannot impersonate other senders or affect delivery schedules (timing
//! belongs to the [`DeliveryPolicy`](dbac_sim::scheduler::DeliveryPolicy)).
//! Paths are forged as interned ids: the shared topology is common
//! knowledge, so an adversary may reference any path in the population —
//! and receivers reject ids outside it at validation.

use crate::flood;
use crate::message::ProtocolMsg;
use crate::precompute::Topology;
use dbac_graph::{NodeId, NodeSet, PathId};
use dbac_sim::process::{Adversary, Context};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::sync::Arc;

/// Re-export: the silent/crashed adversary (also models crash faults).
pub use dbac_sim::process::Silent;

/// Kinds of Byzantine behaviour available to the run harness.
#[derive(Clone, Debug, PartialEq)]
pub enum AdversaryKind {
    /// Crashed from the start — sends nothing.
    Crash,
    /// Floods a fixed extreme value each round but otherwise relays
    /// honestly (a validity attack).
    ConstantLiar {
        /// The injected value.
        value: f64,
    },
    /// Sends `low` to half of its out-neighbors and `high` to the rest,
    /// and tampers relayed flood values toward whichever extreme it told
    /// that neighbor (a split-brain / agreement attack).
    Equivocator {
        /// Value for the first half.
        low: f64,
        /// Value for the second half.
        high: f64,
    },
    /// Relays flood messages with all values replaced by `spoof`
    /// (an integrity attack on indirect paths).
    RelayTamperer {
        /// The value written into every relayed flood.
        spoof: f64,
    },
    /// Fabricates floods with forged (but well-formed) propagation paths
    /// claiming honest initiators reported `forged_value`.
    PathFabricator {
        /// The forged value attributed to other initiators.
        forged_value: f64,
    },
    /// Random mixture of lying, tampering and dropping, driven by a seed.
    Chaotic {
        /// RNG seed (keeps runs reproducible).
        seed: u64,
    },
}

impl AdversaryKind {
    /// Instantiates the strategy for node `me`.
    #[must_use]
    pub fn build(
        &self,
        topo: Arc<Topology>,
        me: NodeId,
        rounds: u32,
    ) -> Box<dyn Adversary<ProtocolMsg> + Send> {
        match *self {
            AdversaryKind::Crash => Box::new(Silent),
            AdversaryKind::ConstantLiar { value } => {
                Box::new(ConstantLiar { topo, me, value, rounds, relay: RelaySeen::new() })
            }
            AdversaryKind::Equivocator { low, high } => {
                Box::new(Equivocator { topo, me, low, high, rounds, relay: RelaySeen::new() })
            }
            AdversaryKind::RelayTamperer { spoof } => {
                Box::new(RelayTamperer { topo, me, spoof, relay: RelaySeen::new() })
            }
            AdversaryKind::PathFabricator { forged_value } => {
                Box::new(PathFabricator { topo, me, forged_value, relay: RelaySeen::new() })
            }
            AdversaryKind::Chaotic { seed } => Box::new(Chaotic {
                topo,
                me,
                rng: SmallRng::seed_from_u64(seed ^ me.index() as u64),
                relay: RelaySeen::new(),
            }),
        }
    }
}

/// Relay deduplication shared by the strategies (mirrors the honest rule so
/// adversaries do not flood the network into its event budget). Both sets
/// key on wire-supplied bytes (unbounded rounds, payload fingerprints), so
/// they use the seeded default hasher, not the fixed-key fast one.
struct RelaySeen {
    floods: HashSet<(u32, PathId)>,
    completes: HashSet<(PathId, u64, u64)>,
}

impl RelaySeen {
    fn new() -> Self {
        RelaySeen { floods: HashSet::new(), completes: HashSet::new() }
    }
}

/// Relays a message like an honest node would (optionally tampering flood
/// values through `tamper`), sending through `ctx`.
fn relay(
    topo: &Topology,
    me: NodeId,
    seen: &mut RelaySeen,
    ctx: &mut Context<ProtocolMsg>,
    from: NodeId,
    msg: &ProtocolMsg,
    tamper: impl Fn(f64) -> f64,
) {
    match msg {
        ProtocolMsg::Flood { round, value, path } => {
            let Some(stored) = crate::message::validate_flood(topo, me, from, *path) else {
                return;
            };
            if !seen.floods.insert((*round, stored)) {
                return;
            }
            let forwarded = tamper(*value);
            for (to, m) in flood::flood_forwards(topo, me, *round, forwarded, stored) {
                ctx.send(to, m);
            }
        }
        ProtocolMsg::Complete { round, suspects, payload, path, seq } => {
            let Some(stored) =
                crate::message::validate_complete(topo, me, from, *path, *suspects, *seq)
            else {
                return;
            };
            let fp = payload.fingerprint();
            if !seen.completes.insert((stored, *seq, fp)) {
                return;
            }
            for (to, m) in
                crate::fifo::complete_forwards(topo, me, *round, *suspects, payload, stored, *seq)
            {
                ctx.send(to, m);
            }
        }
    }
}

struct ConstantLiar {
    topo: Arc<Topology>,
    me: NodeId,
    value: f64,
    rounds: u32,
    relay: RelaySeen,
}

impl Adversary<ProtocolMsg> for ConstantLiar {
    fn on_start(&mut self, ctx: &mut Context<ProtocolMsg>) {
        // Inject the extreme value into every round up front; relays of
        // other nodes will spread it exactly like a real flood.
        for round in 0..self.rounds {
            for (to, m) in flood::initial_flood(&self.topo, self.me, round, self.value) {
                ctx.send(to, m);
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Context<ProtocolMsg>, from: NodeId, msg: ProtocolMsg) {
        relay(&self.topo, self.me, &mut self.relay, ctx, from, &msg, |v| v);
    }
}

struct Equivocator {
    topo: Arc<Topology>,
    me: NodeId,
    low: f64,
    high: f64,
    rounds: u32,
    relay: RelaySeen,
}

impl Adversary<ProtocolMsg> for Equivocator {
    fn on_start(&mut self, ctx: &mut Context<ProtocolMsg>) {
        let neighbors: Vec<NodeId> = ctx.out_neighbors().iter().collect();
        let half = neighbors.len() / 2;
        for round in 0..self.rounds {
            let path = self.topo.index().trivial(self.me);
            for (i, &w) in neighbors.iter().enumerate() {
                let value = if i < half { self.low } else { self.high };
                ctx.send(w, ProtocolMsg::Flood { round, value, path });
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Context<ProtocolMsg>, from: NodeId, msg: ProtocolMsg) {
        // Tamper relayed values toward the low extreme (keeps the
        // equivocation asymmetric and nastier to filter).
        let low = self.low;
        relay(&self.topo, self.me, &mut self.relay, ctx, from, &msg, |_| low);
    }
}

struct RelayTamperer {
    topo: Arc<Topology>,
    me: NodeId,
    spoof: f64,
    relay: RelaySeen,
}

impl Adversary<ProtocolMsg> for RelayTamperer {
    fn on_start(&mut self, _ctx: &mut Context<ProtocolMsg>) {}

    fn on_message(&mut self, ctx: &mut Context<ProtocolMsg>, from: NodeId, msg: ProtocolMsg) {
        let spoof = self.spoof;
        relay(&self.topo, self.me, &mut self.relay, ctx, from, &msg, |_| spoof);
    }
}

struct PathFabricator {
    topo: Arc<Topology>,
    me: NodeId,
    forged_value: f64,
    relay: RelaySeen,
}

impl Adversary<ProtocolMsg> for PathFabricator {
    fn on_start(&mut self, ctx: &mut Context<ProtocolMsg>) {
        // Claim every simple path ending at me carried `forged_value` —
        // i.e. attribute the forged value to every other initiator.
        let paths: Vec<PathId> = self.topo.simple_paths_to(self.me).to_vec();
        for path in paths {
            if self.topo.index().is_trivial(path) {
                continue;
            }
            for (to, m) in flood::flood_forwards(&self.topo, self.me, 0, self.forged_value, path) {
                ctx.send(to, m);
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Context<ProtocolMsg>, from: NodeId, msg: ProtocolMsg) {
        relay(&self.topo, self.me, &mut self.relay, ctx, from, &msg, |v| v);
    }
}

struct Chaotic {
    topo: Arc<Topology>,
    me: NodeId,
    rng: SmallRng,
    relay: RelaySeen,
}

impl Adversary<ProtocolMsg> for Chaotic {
    fn on_start(&mut self, ctx: &mut Context<ProtocolMsg>) {
        let value = self.rng.gen_range(-1000.0..1000.0);
        for (to, m) in flood::initial_flood(&self.topo, self.me, 0, value) {
            if self.rng.gen_bool(0.8) {
                ctx.send(to, m);
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Context<ProtocolMsg>, from: NodeId, msg: ProtocolMsg) {
        if self.rng.gen_bool(0.2) {
            return; // drop
        }
        let tampered: Option<f64> =
            if self.rng.gen_bool(0.3) { Some(self.rng.gen_range(-1000.0..1000.0)) } else { None };
        relay(&self.topo, self.me, &mut self.relay, ctx, from, &msg, |v| tampered.unwrap_or(v));
    }
}

/// A Byzantine node that replays a scripted message sequence, used by the
/// Appendix-B impossibility experiment: in execution `e3` the faulty set
/// `F` behaves toward one side exactly as recorded in `e1` and toward the
/// other exactly as in `e2`.
pub struct Replayer {
    script: Vec<(NodeId, ProtocolMsg)>,
    cursor: usize,
    per_trigger: usize,
}

impl Replayer {
    /// Creates a replayer that emits `per_trigger` scripted sends per
    /// activation (start or message receipt), preserving script order.
    #[must_use]
    pub fn new(script: Vec<(NodeId, ProtocolMsg)>, per_trigger: usize) -> Self {
        Replayer { script, cursor: 0, per_trigger: per_trigger.max(1) }
    }

    fn emit(&mut self, ctx: &mut Context<ProtocolMsg>) {
        for _ in 0..self.per_trigger {
            if self.cursor >= self.script.len() {
                return;
            }
            let (to, msg) = self.script[self.cursor].clone();
            self.cursor += 1;
            ctx.send(to, msg);
        }
    }
}

impl Adversary<ProtocolMsg> for Replayer {
    fn on_start(&mut self, ctx: &mut Context<ProtocolMsg>) {
        self.emit(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<ProtocolMsg>, _from: NodeId, _msg: ProtocolMsg) {
        self.emit(ctx);
    }
}

/// Picks `count` deterministic victim nodes for experiments: the highest
/// node indices, which keeps examples readable.
#[must_use]
pub fn default_victims(n: usize, count: usize) -> NodeSet {
    (n.saturating_sub(count)..n).map(NodeId::new).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::clique_topo;

    fn topo(n: usize) -> Arc<Topology> {
        Arc::new(clique_topo(n, 1))
    }

    fn ctx_for(topo: &Topology, me: NodeId) -> Context<ProtocolMsg> {
        Context::new(me, topo.graph().out_neighbors(me))
    }

    #[test]
    fn constant_liar_floods_every_round() {
        let t = topo(4);
        let mut a =
            AdversaryKind::ConstantLiar { value: 99.0 }.build(Arc::clone(&t), NodeId::new(0), 3);
        let mut ctx = ctx_for(&t, NodeId::new(0));
        a.on_start(&mut ctx);
        // 3 rounds × 3 neighbors.
        assert_eq!(ctx.pending(), 9);
    }

    #[test]
    fn equivocator_splits_values() {
        let t = topo(5);
        let mut a = AdversaryKind::Equivocator { low: -5.0, high: 5.0 }.build(
            Arc::clone(&t),
            NodeId::new(0),
            1,
        );
        let mut ctx = ctx_for(&t, NodeId::new(0));
        a.on_start(&mut ctx);
        let out = ctx.take_outbox();
        let values: Vec<f64> = out
            .iter()
            .map(|(_, m)| match m {
                ProtocolMsg::Flood { value, .. } => *value,
                ProtocolMsg::Complete { .. } => panic!("unexpected"),
            })
            .collect();
        assert!(values.contains(&-5.0) && values.contains(&5.0));
    }

    #[test]
    fn relay_tamperer_spoofs_values_but_keeps_paths() {
        let t = topo(4);
        let mut a =
            AdversaryKind::RelayTamperer { spoof: 42.0 }.build(Arc::clone(&t), NodeId::new(1), 1);
        let mut ctx = ctx_for(&t, NodeId::new(1));
        let origin = t.index().trivial(NodeId::new(0));
        let wire = ProtocolMsg::Flood { round: 0, value: 7.0, path: origin };
        a.on_message(&mut ctx, NodeId::new(0), wire);
        let out = ctx.take_outbox();
        assert!(!out.is_empty());
        for (_, m) in &out {
            match m {
                ProtocolMsg::Flood { value, path, .. } => {
                    assert_eq!(*value, 42.0);
                    assert_eq!(t.index().init(*path), NodeId::new(0), "path preserved");
                }
                ProtocolMsg::Complete { .. } => panic!("unexpected"),
            }
        }
    }

    #[test]
    fn relay_dedupes_replays() {
        let t = topo(4);
        let mut a =
            AdversaryKind::ConstantLiar { value: 0.0 }.build(Arc::clone(&t), NodeId::new(1), 1);
        let wire =
            ProtocolMsg::Flood { round: 0, value: 7.0, path: t.index().trivial(NodeId::new(0)) };
        let mut ctx = ctx_for(&t, NodeId::new(1));
        a.on_message(&mut ctx, NodeId::new(0), wire.clone());
        let first = ctx.take_outbox().len();
        a.on_message(&mut ctx, NodeId::new(0), wire);
        assert_eq!(ctx.pending(), 0, "duplicate relays suppressed (first: {first})");
    }

    #[test]
    fn fabricator_attributes_values_to_others() {
        let t = topo(4);
        let mut a = AdversaryKind::PathFabricator { forged_value: -77.0 }.build(
            Arc::clone(&t),
            NodeId::new(2),
            1,
        );
        let mut ctx = ctx_for(&t, NodeId::new(2));
        a.on_start(&mut ctx);
        let out = ctx.take_outbox();
        assert!(!out.is_empty());
        assert!(out.iter().any(|(_, m)| match m {
            ProtocolMsg::Flood { path, .. } => t.index().init(*path) != NodeId::new(2),
            ProtocolMsg::Complete { .. } => false,
        }));
    }

    #[test]
    fn replayer_emits_in_order() {
        let t = topo(3);
        let t0 = t.index().trivial(NodeId::new(0));
        let t1 = t.index().trivial(NodeId::new(1));
        let script = vec![
            (NodeId::new(1), ProtocolMsg::Flood { round: 0, value: 1.0, path: t0 }),
            (NodeId::new(2), ProtocolMsg::Flood { round: 0, value: 2.0, path: t0 }),
        ];
        let mut r = Replayer::new(script, 1);
        let mut ctx = ctx_for(&t, NodeId::new(0));
        r.on_start(&mut ctx);
        assert_eq!(ctx.pending(), 1);
        r.on_message(
            &mut ctx,
            NodeId::new(1),
            ProtocolMsg::Flood { round: 0, value: 0.0, path: t1 },
        );
        assert_eq!(ctx.pending(), 2);
        // Script exhausted: further triggers emit nothing.
        r.on_message(
            &mut ctx,
            NodeId::new(1),
            ProtocolMsg::Flood { round: 0, value: 0.0, path: t1 },
        );
        assert_eq!(ctx.pending(), 2);
    }

    #[test]
    fn chaotic_is_deterministic_per_seed() {
        let t = topo(4);
        let run = |seed| {
            let mut a = AdversaryKind::Chaotic { seed }.build(Arc::clone(&t), NodeId::new(0), 1);
            let mut ctx = ctx_for(&t, NodeId::new(0));
            a.on_start(&mut ctx);
            ctx.take_outbox().len()
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn default_victims_picks_top_indices() {
        let v = default_victims(6, 2);
        assert_eq!(v.len(), 2);
        assert!(v.contains(NodeId::new(4)) && v.contains(NodeId::new(5)));
    }
}
