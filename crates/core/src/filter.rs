//! Algorithm 3: **Filter-and-Average**.
//!
//! A node sorts every message in its round history `M_v`, trims the longest
//! value-prefix and value-suffix whose propagation paths admit an `f`-cover
//! (i.e. could have been tampered with by *some* fault set), and moves to
//! the midpoint of the surviving extremes.
//!
//! Note on the paper's line 5: the printed update rule is
//! `(max − min)/2`, but the convergence proof (Lemma 15) manipulates
//! `(z + µ)/2 ≤ x ≤ (z + U)/2`, the algebra of the **midpoint**
//! `(max + min)/2`; we implement the midpoint (DESIGN.md §3.1).
//!
//! Cover candidates exclude the executing node itself — a node never
//! suspects its own value (DESIGN.md §3.2) — which also guarantees the
//! trimmed vector is never empty: the trivial path `⟨v⟩` is uncoverable.

use crate::message_set::MessageSet;
use dbac_conditions::cover::has_cover;
use dbac_graph::{NodeId, NodeSet, PathId, PathIndex};
use serde::{Deserialize, Serialize};

/// The result of one Filter-and-Average step.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FilterOutcome {
    /// The new state value `x_v[r+1]` — midpoint of the surviving extremes.
    pub value: f64,
    /// Messages trimmed from the low end (`O^lo_v`).
    pub trimmed_low: usize,
    /// Messages trimmed from the high end (`O^hi_v`).
    pub trimmed_high: usize,
    /// Messages surviving in `O'_v`.
    pub kept: usize,
}

/// Runs Filter-and-Average over the accumulated round history `mset` at
/// node `me` in an `n`-node network with fault bound `f`.
///
/// Returns `None` only if trimming would consume everything — impossible
/// in a genuine protocol state (the node's own trivial path is present and
/// uncoverable), but handled defensively for direct library use.
#[must_use]
pub fn filter_and_average(
    mset: &MessageSet,
    f: usize,
    me: NodeId,
    n: usize,
    index: &PathIndex,
) -> Option<FilterOutcome> {
    // Line 1: sort by value; ties broken by path id for determinism (ids
    // are canonical across nodes).
    let mut entries: Vec<(PathId, f64)> = mset.iter().collect();
    entries.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    let sets: Vec<NodeSet> = entries.iter().map(|&(p, _)| index.node_set(p)).collect();
    let len = entries.len();
    if len == 0 {
        return None;
    }

    let allowed = NodeSet::universe(n) - NodeSet::singleton(me);

    // Lines 2–3: longest coverable prefix / suffix. Coverable prefixes are
    // downward closed (a cover of a superset covers the subset), so the
    // maximal length is found by binary search.
    let lo = longest_coverable(|k| &sets[..k], len, f, allowed);
    let hi = longest_coverable(|k| &sets[len - k..], len, f, allowed);

    if lo + hi >= len {
        return None;
    }
    // Line 4: remove both trims; line 5: midpoint of the extremes.
    let kept = &entries[lo..len - hi];
    let value = (kept[0].1 + kept[kept.len() - 1].1) / 2.0;
    Some(FilterOutcome { value, trimmed_low: lo, trimmed_high: hi, kept: kept.len() })
}

fn longest_coverable<'a>(
    slice: impl Fn(usize) -> &'a [NodeSet],
    len: usize,
    f: usize,
    allowed: NodeSet,
) -> usize {
    // Largest k in [0, len] with a cover; k = 0 always qualifies.
    let (mut lo, mut hi) = (0usize, len);
    while lo < hi {
        let mid = lo + (hi - lo).div_ceil(2);
        if has_cover(slice(mid), f, allowed) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precompute::Topology;
    use crate::test_support::{clique_topo, pid};

    fn id(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn topo(n: usize) -> Topology {
        clique_topo(n, 1)
    }

    #[test]
    fn no_faults_no_trim() {
        // f = 0: nothing is coverable, midpoint of raw extremes.
        let t = topo(4);
        let m: MessageSet =
            [(pid(&t, &[1, 0]), 1.0), (pid(&t, &[2, 0]), 5.0), (pid(&t, &[0]), 3.0)]
                .into_iter()
                .collect();
        let out = filter_and_average(&m, 0, id(0), 4, t.index()).unwrap();
        assert_eq!(out.value, 3.0);
        assert_eq!((out.trimmed_low, out.trimmed_high, out.kept), (0, 0, 3));
    }

    #[test]
    fn single_liar_trimmed_from_low_end() {
        // Node 3 injects an extreme low value on all its paths; every such
        // path contains node 3, so {3} is a 1-cover and the prefix goes.
        let t = topo(4);
        let m: MessageSet = [
            (pid(&t, &[3, 0]), -100.0),
            (pid(&t, &[3, 1, 0]), -100.0),
            (pid(&t, &[1, 0]), 4.0),
            (pid(&t, &[2, 0]), 6.0),
            (pid(&t, &[0]), 5.0),
        ]
        .into_iter()
        .collect();
        let out = filter_and_average(&m, 1, id(0), 4, t.index()).unwrap();
        assert_eq!(out.trimmed_low, 2);
        // The genuine high 6 also trims ({2} covers its only path); the
        // survivors are 4 and 5 — still inside the honest range.
        assert_eq!(out.trimmed_high, 1);
        assert_eq!(out.value, 4.5);
    }

    #[test]
    fn genuine_extremes_survive_when_uncoverable() {
        // The low value arrives over two node-disjoint paths — no single
        // node covers both, so it must be kept (it may be genuine).
        let t = topo(5);
        let m: MessageSet = [
            (pid(&t, &[3, 0]), -100.0),
            (pid(&t, &[4, 0]), -100.0),
            (pid(&t, &[1, 0]), 4.0),
            (pid(&t, &[0]), 5.0),
        ]
        .into_iter()
        .collect();
        let out = filter_and_average(&m, 1, id(0), 5, t.index()).unwrap();
        // The *first* -100 alone is coverable ({3}), but the prefix cannot
        // extend over both disjoint paths — one -100 message survives.
        assert_eq!(out.trimmed_low, 1);
        assert_eq!(out.value, (-100.0 + 5.0) / 2.0);
    }

    #[test]
    fn own_trivial_path_is_never_trimmed() {
        // Everything except ⟨0⟩ is coverable; the own value survives.
        let t = topo(4);
        let m: MessageSet =
            [(pid(&t, &[3, 0]), -9.0), (pid(&t, &[0]), 2.0), (pid(&t, &[3, 1, 0]), 11.0)]
                .into_iter()
                .collect();
        let out = filter_and_average(&m, 1, id(0), 4, t.index()).unwrap();
        assert_eq!(out.kept, 1);
        assert_eq!(out.value, 2.0);
    }

    #[test]
    fn two_fault_budget_trims_two_liars() {
        let t = topo(5);
        let m: MessageSet = [
            (pid(&t, &[3, 0]), -50.0),
            (pid(&t, &[4, 0]), -40.0),
            (pid(&t, &[1, 0]), 1.0),
            (pid(&t, &[0]), 2.0),
            (pid(&t, &[2, 0]), 3.0),
        ]
        .into_iter()
        .collect();
        // f = 1 cannot cover paths through 3 and 4 together.
        let out1 = filter_and_average(&m, 1, id(0), 5, t.index()).unwrap();
        assert_eq!(out1.trimmed_low, 1, "only the single lowest is 1-coverable");
        // f = 2 can.
        let out2 = filter_and_average(&m, 2, id(0), 5, t.index()).unwrap();
        assert_eq!(out2.trimmed_low, 2);
        // Survivors: 1, 2 (the genuine 3 trims as a coverable suffix).
        assert_eq!(out2.value, 1.5);
    }

    #[test]
    fn empty_set_returns_none() {
        let t = topo(3);
        assert_eq!(filter_and_average(&MessageSet::new(), 1, id(0), 3, t.index()), None);
    }

    #[test]
    fn value_ties_keep_message_granularity() {
        // Two messages with the same value: trimming is by message, and the
        // sort is deterministic under ties (id order puts ⟨0⟩ before
        // ⟨1,0⟩ before ⟨2,0⟩ in the terminal-0 pool).
        let t = topo(3);
        let m: MessageSet =
            [(pid(&t, &[1, 0]), 5.0), (pid(&t, &[2, 0]), 5.0), (pid(&t, &[0]), 5.0)]
                .into_iter()
                .collect();
        assert!(pid(&t, &[0]) < pid(&t, &[1, 0]) && pid(&t, &[1, 0]) < pid(&t, &[2, 0]));
        let out = filter_and_average(&m, 1, id(0), 3, t.index()).unwrap();
        assert_eq!(out.value, 5.0);
        // Sorted (value, id): ⟨0⟩, ⟨1,0⟩, ⟨2,0⟩. The prefix starts at the
        // uncoverable ⟨0⟩ (lo = 0); the suffix trims only ⟨2,0⟩.
        assert_eq!((out.trimmed_low, out.trimmed_high, out.kept), (0, 1, 2));
    }
}
