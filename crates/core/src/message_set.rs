//! Message sets (Section 4.1 of the paper, Definitions 7–9).
//!
//! A message set `M` accumulates value–path pairs `(x, p)`; the paper's
//! three operations on it drive Algorithm BW:
//!
//! * **exclusion** `M|_Ā` — keep only messages whose path avoids `A`;
//! * **consistency** — all paths from the same initiator report one value;
//! * **fullness** for `(A, v)` — every redundant path avoiding `A` and
//!   terminating at `v` has reported.

use dbac_graph::{NodeId, NodeSet, Path};
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

/// An accumulated set of `(value, path)` messages, keyed by path.
///
/// The first value received for a path wins (matching RedundantFlood's
/// "first message with path p" rule); a path can therefore never report two
/// values *within one set*.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MessageSet {
    entries: BTreeMap<Path, f64>,
}

impl MessageSet {
    /// Creates an empty message set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `(value, path)`; returns `false` (and keeps the original) if
    /// the path already reported.
    pub fn insert(&mut self, path: Path, value: f64) -> bool {
        match self.entries.entry(path) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(value);
                true
            }
            std::collections::btree_map::Entry::Occupied(_) => false,
        }
    }

    /// Number of messages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no message has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns `true` if `path` has reported.
    #[must_use]
    pub fn contains_path(&self, path: &Path) -> bool {
        self.entries.contains_key(path)
    }

    /// The value reported along `path`, if any.
    #[must_use]
    pub fn value_on_path(&self, path: &Path) -> Option<f64> {
        self.entries.get(path).copied()
    }

    /// Iterates over `(path, value)` in deterministic (path) order.
    pub fn iter(&self) -> impl Iterator<Item = (&Path, f64)> + '_ {
        self.entries.iter().map(|(p, &v)| (p, v))
    }

    /// The paper's `P(M)`: the set of propagation paths.
    pub fn paths(&self) -> impl Iterator<Item = &Path> + '_ {
        self.entries.keys()
    }

    /// The exclusion `M|_Ā` (Definition 7): messages whose path avoids `A`.
    #[must_use]
    pub fn exclusion(&self, a: NodeSet) -> MessageSet {
        MessageSet {
            entries: self
                .entries
                .iter()
                .filter(|(p, _)| !p.intersects(a))
                .map(|(p, &v)| (p.clone(), v))
                .collect(),
        }
    }

    /// Consistency (Definition 8): every initiator reports a unique value.
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        let mut seen: BTreeMap<NodeId, f64> = BTreeMap::new();
        for (p, &v) in &self.entries {
            match seen.entry(p.init()) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(v);
                }
                std::collections::btree_map::Entry::Occupied(e) => {
                    if e.get().to_bits() != v.to_bits() {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// The paper's `value_q(M)`: the value reported by initiator `q`.
    /// Unique when the set is consistent; otherwise the first in path
    /// order.
    #[must_use]
    pub fn value_of(&self, q: NodeId) -> Option<f64> {
        self.entries.iter().find(|(p, _)| p.init() == q).map(|(_, &v)| v)
    }

    /// Fullness (Definition 9) against a pre-enumerated requirement list:
    /// every required path has reported.
    #[must_use]
    pub fn is_full_for(&self, required: &[Path]) -> bool {
        required.iter().all(|p| self.entries.contains_key(p))
    }

    /// The set of initiators appearing in the set.
    #[must_use]
    pub fn initiators(&self) -> NodeSet {
        self.entries.keys().map(Path::init).collect()
    }
}

impl FromIterator<(Path, f64)> for MessageSet {
    fn from_iter<I: IntoIterator<Item = (Path, f64)>>(iter: I) -> Self {
        let mut m = MessageSet::new();
        for (p, v) in iter {
            m.insert(p, v);
        }
        m
    }
}

/// The immutable payload of a `COMPLETE` message: a snapshot of the
/// initiator's `M_c|_F̄` at the moment its Maximal-Consistency condition
/// fired (Algorithm 1, line 11). Entries are kept sorted by path so two
/// payloads are equal iff their contents are.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CompletePayload {
    entries: Vec<(Path, f64)>,
}

impl CompletePayload {
    /// Snapshots a message set into a canonical payload.
    #[must_use]
    pub fn from_message_set(m: &MessageSet) -> Self {
        CompletePayload { entries: m.iter().map(|(p, v)| (p.clone(), v)).collect() }
    }

    /// The `(path, value)` entries in canonical (path) order.
    #[must_use]
    pub fn entries(&self) -> &[(Path, f64)] {
        &self.entries
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the payload carries no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Consistency of the payload (Definition 8).
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        let mut seen: BTreeMap<NodeId, f64> = BTreeMap::new();
        for (p, v) in &self.entries {
            match seen.entry(p.init()) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(*v);
                }
                std::collections::btree_map::Entry::Occupied(e) => {
                    if e.get().to_bits() != v.to_bits() {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// `value_q` of the payload: the (first) value reported by initiator `q`.
    #[must_use]
    pub fn value_of(&self, q: NodeId) -> Option<f64> {
        self.entries.iter().find(|(p, _)| p.init() == q).map(|(_, v)| *v)
    }

    /// A content fingerprint used to compare payloads received over
    /// different paths ("the same message", Algorithm 1 line 12).
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        for (p, v) in &self.entries {
            p.nodes().hash(&mut h);
            v.to_bits().hash(&mut h);
        }
        self.entries.len().hash(&mut h);
        h.finish()
    }

    /// Rebuilds a [`MessageSet`] view of the payload.
    #[must_use]
    pub fn to_message_set(&self) -> MessageSet {
        self.entries.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(idx: &[usize]) -> Path {
        Path::from_indices(idx).unwrap()
    }

    fn ns(ids: &[usize]) -> NodeSet {
        ids.iter().map(|&i| NodeId::new(i)).collect()
    }

    #[test]
    fn first_value_per_path_wins() {
        let mut m = MessageSet::new();
        assert!(m.insert(p(&[0, 1]), 1.0));
        assert!(!m.insert(p(&[0, 1]), 9.0));
        assert_eq!(m.value_on_path(&p(&[0, 1])), Some(1.0));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn exclusion_filters_by_path_nodes() {
        let m: MessageSet =
            [(p(&[0, 1, 2]), 1.0), (p(&[3, 2]), 2.0), (p(&[2]), 3.0)].into_iter().collect();
        let e = m.exclusion(ns(&[1]));
        assert_eq!(e.len(), 2);
        assert!(!e.contains_path(&p(&[0, 1, 2])));
        // Exclusion on nothing is identity.
        assert_eq!(m.exclusion(NodeSet::EMPTY), m);
    }

    #[test]
    fn consistency_per_initiator() {
        let mut m = MessageSet::new();
        m.insert(p(&[0, 2]), 5.0);
        m.insert(p(&[0, 1, 2]), 5.0);
        assert!(m.is_consistent());
        m.insert(p(&[0, 3, 2]), 6.0);
        assert!(!m.is_consistent());
        // … but excluding the offending path restores consistency.
        assert!(m.exclusion(ns(&[3])).is_consistent());
    }

    #[test]
    fn value_of_initiator() {
        let m: MessageSet = [(p(&[4, 2]), 8.0), (p(&[1, 2]), 3.0)].into_iter().collect();
        assert_eq!(m.value_of(NodeId::new(4)), Some(8.0));
        assert_eq!(m.value_of(NodeId::new(9)), None);
        assert_eq!(m.initiators(), ns(&[1, 4]));
    }

    #[test]
    fn fullness_against_requirements() {
        let m: MessageSet = [(p(&[0, 2]), 1.0), (p(&[2]), 0.0)].into_iter().collect();
        assert!(m.is_full_for(&[p(&[2]), p(&[0, 2])]));
        assert!(!m.is_full_for(&[p(&[2]), p(&[1, 2])]));
        assert!(m.is_full_for(&[]));
    }

    #[test]
    fn payload_round_trip_and_fingerprint() {
        let m: MessageSet = [(p(&[0, 2]), 1.5), (p(&[1, 2]), 2.5)].into_iter().collect();
        let pay = CompletePayload::from_message_set(&m);
        assert_eq!(pay.len(), 2);
        assert!(pay.is_consistent());
        assert_eq!(pay.value_of(NodeId::new(1)), Some(2.5));
        assert_eq!(pay.to_message_set(), m);

        let same = CompletePayload::from_message_set(&m.clone());
        assert_eq!(pay.fingerprint(), same.fingerprint());
        let different: MessageSet = [(p(&[0, 2]), 1.5)].into_iter().collect();
        assert_ne!(pay.fingerprint(), CompletePayload::from_message_set(&different).fingerprint());
    }

    #[test]
    fn payload_inconsistency_detected() {
        let m: MessageSet = [(p(&[0, 2]), 1.0), (p(&[0, 1, 2]), 2.0)].into_iter().collect();
        assert!(!CompletePayload::from_message_set(&m).is_consistent());
    }

    #[test]
    fn deterministic_iteration_order() {
        let m: MessageSet =
            [(p(&[2]), 0.0), (p(&[0, 2]), 1.0), (p(&[1, 2]), 2.0)].into_iter().collect();
        let order: Vec<Path> = m.paths().cloned().collect();
        let mut sorted = order.clone();
        sorted.sort();
        assert_eq!(order, sorted);
    }
}
