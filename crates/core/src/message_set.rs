//! Message sets (Section 4.1 of the paper, Definitions 7–9).
//!
//! A message set `M` accumulates value–path pairs `(x, p)`; the paper's
//! three operations on it drive Algorithm BW:
//!
//! * **exclusion** `M|_Ā` — keep only messages whose path avoids `A`;
//! * **consistency** — all paths from the same initiator report one value;
//! * **fullness** for `(A, v)` — every redundant path avoiding `A` and
//!   terminating at `v` has reported.
//!
//! Paths are held as interned [`PathId`]s: insertion and lookup compare
//! one `u32` instead of hashing a node vector, and the set-theoretic
//! operations read the [`PathIndex`]'s precomputed bitmasks. The index is
//! passed into the operations that need path metadata; ids in a set are
//! only meaningful relative to the topology whose index interned them.

use dbac_graph::{NodeId, NodeSet, PathId, PathIndex};
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

/// An accumulated set of `(value, path)` messages, keyed by interned path.
///
/// The first value received for a path wins (matching RedundantFlood's
/// "first message with path p" rule); a path can therefore never report two
/// values *within one set*. Iteration order is id order, which is
/// deterministic and identical at every node.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MessageSet {
    entries: BTreeMap<PathId, f64>,
}

impl MessageSet {
    /// Creates an empty message set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `(value, path)`; returns `false` (and keeps the original) if
    /// the path already reported.
    pub fn insert(&mut self, path: PathId, value: f64) -> bool {
        match self.entries.entry(path) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(value);
                true
            }
            std::collections::btree_map::Entry::Occupied(_) => false,
        }
    }

    /// Number of messages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no message has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns `true` if `path` has reported.
    #[must_use]
    pub fn contains_path(&self, path: PathId) -> bool {
        self.entries.contains_key(&path)
    }

    /// The value reported along `path`, if any.
    #[must_use]
    pub fn value_on_path(&self, path: PathId) -> Option<f64> {
        self.entries.get(&path).copied()
    }

    /// Iterates over `(path, value)` in deterministic (id) order.
    pub fn iter(&self) -> impl Iterator<Item = (PathId, f64)> + '_ {
        self.entries.iter().map(|(&p, &v)| (p, v))
    }

    /// The paper's `P(M)`: the set of propagation paths.
    pub fn paths(&self) -> impl Iterator<Item = PathId> + '_ {
        self.entries.keys().copied()
    }

    /// The exclusion `M|_Ā` (Definition 7): messages whose path avoids `A`.
    #[must_use]
    pub fn exclusion(&self, a: NodeSet, index: &PathIndex) -> MessageSet {
        MessageSet {
            entries: self
                .entries
                .iter()
                .filter(|(&p, _)| !index.intersects(p, a))
                .map(|(&p, &v)| (p, v))
                .collect(),
        }
    }

    /// Consistency (Definition 8): every initiator reports a unique value.
    #[must_use]
    pub fn is_consistent(&self, index: &PathIndex) -> bool {
        values_consistent(self.entries.iter().map(|(&p, &v)| (p, v)), index)
    }

    /// The paper's `value_q(M)`: the value reported by initiator `q`.
    /// Unique when the set is consistent; otherwise the first in id order.
    #[must_use]
    pub fn value_of(&self, q: NodeId, index: &PathIndex) -> Option<f64> {
        self.entries.iter().find(|(&p, _)| index.init(p) == q).map(|(_, &v)| v)
    }

    /// Fullness (Definition 9) against a pre-enumerated requirement list:
    /// every required path has reported.
    #[must_use]
    pub fn is_full_for(&self, required: &[PathId]) -> bool {
        required.iter().all(|p| self.entries.contains_key(p))
    }

    /// The set of initiators appearing in the set.
    #[must_use]
    pub fn initiators(&self, index: &PathIndex) -> NodeSet {
        self.entries.keys().map(|&p| index.init(p)).collect()
    }
}

impl FromIterator<(PathId, f64)> for MessageSet {
    fn from_iter<I: IntoIterator<Item = (PathId, f64)>>(iter: I) -> Self {
        let mut m = MessageSet::new();
        for (p, v) in iter {
            m.insert(p, v);
        }
        m
    }
}

fn fingerprint_entries(entries: &[(PathId, f64)]) -> u64 {
    let mut h = DefaultHasher::new();
    for &(p, v) in entries {
        p.raw().hash(&mut h);
        v.to_bits().hash(&mut h);
    }
    entries.len().hash(&mut h);
    h.finish()
}

fn values_consistent(entries: impl Iterator<Item = (PathId, f64)>, index: &PathIndex) -> bool {
    let mut seen: BTreeMap<NodeId, u64> = BTreeMap::new();
    for (p, v) in entries {
        match seen.entry(index.init(p)) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(v.to_bits());
            }
            std::collections::btree_map::Entry::Occupied(e) => {
                if *e.get() != v.to_bits() {
                    return false;
                }
            }
        }
    }
    true
}

/// The immutable payload of a `COMPLETE` message: a snapshot of the
/// initiator's `M_c|_F̄` at the moment its Maximal-Consistency condition
/// fired (Algorithm 1, line 11). Entries are kept sorted by id — ids are
/// canonical across nodes — so two payloads are equal iff their contents
/// are.
#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(from = "Vec<(PathId, f64)>", into = "Vec<(PathId, f64)>")]
pub struct CompletePayload {
    entries: Vec<(PathId, f64)>,
    /// Content hash, computed once at construction — fingerprinting happens
    /// on every arrival, so it must not rehash the entries each time.
    ///
    /// Trust boundary: the fingerprint is *derived* state and must never be
    /// accepted from the wire — the witness logic counts "same message" by
    /// fingerprint equality, so a forgeable hash would let a Byzantine
    /// sender alias distinct payloads. The container-level `from`/`into`
    /// attributes make the wire format the bare entry list: deserialization
    /// is forced through [`CompletePayload::from_entries`], which recomputes
    /// the hash, so wire ingress cannot supply its own.
    fingerprint: u64,
}

impl From<Vec<(PathId, f64)>> for CompletePayload {
    fn from(entries: Vec<(PathId, f64)>) -> Self {
        CompletePayload::from_entries(entries)
    }
}

impl From<CompletePayload> for Vec<(PathId, f64)> {
    fn from(payload: CompletePayload) -> Self {
        payload.entries
    }
}

/// Equality is by entries alone: the fingerprint is derived state and is
/// not serialized, so it must not participate in comparisons.
impl PartialEq for CompletePayload {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
    }
}

impl CompletePayload {
    /// Snapshots a message set into a canonical payload.
    #[must_use]
    pub fn from_message_set(m: &MessageSet) -> Self {
        CompletePayload::from_entries(m.iter().collect())
    }

    /// Builds a payload from raw `(path, value)` entries — the only way to
    /// construct one, so the cached fingerprint always matches the entries
    /// (wire ingress cannot supply its own).
    #[must_use]
    pub fn from_entries(mut entries: Vec<(PathId, f64)>) -> Self {
        entries.sort_unstable_by_key(|&(p, _)| p);
        let fingerprint = fingerprint_entries(&entries);
        CompletePayload { entries, fingerprint }
    }

    /// The `(path, value)` entries in canonical (id) order.
    #[must_use]
    pub fn entries(&self) -> &[(PathId, f64)] {
        &self.entries
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the payload carries no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Consistency of the payload (Definition 8).
    #[must_use]
    pub fn is_consistent(&self, index: &PathIndex) -> bool {
        values_consistent(self.entries.iter().copied(), index)
    }

    /// `value_q` of the payload: the (first) value reported by initiator `q`.
    #[must_use]
    pub fn value_of(&self, q: NodeId, index: &PathIndex) -> Option<f64> {
        self.entries.iter().find(|&&(p, _)| index.init(p) == q).map(|&(_, v)| v)
    }

    /// A content fingerprint used to compare payloads received over
    /// different paths ("the same message", Algorithm 1 line 12). Ids are
    /// canonical per topology, so fingerprints agree across nodes. O(1):
    /// the hash is precomputed at construction.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Rebuilds a [`MessageSet`] view of the payload.
    #[must_use]
    pub fn to_message_set(&self) -> MessageSet {
        self.entries.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precompute::Topology;
    use crate::test_support::{clique_topo, pid};

    fn topo() -> Topology {
        clique_topo(4, 1)
    }

    fn ns(ids: &[usize]) -> NodeSet {
        ids.iter().map(|&i| NodeId::new(i)).collect()
    }

    #[test]
    fn first_value_per_path_wins() {
        let t = topo();
        let p01 = pid(&t, &[0, 1]);
        let mut m = MessageSet::new();
        assert!(m.insert(p01, 1.0));
        assert!(!m.insert(p01, 9.0));
        assert_eq!(m.value_on_path(p01), Some(1.0));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn exclusion_filters_by_path_nodes() {
        let t = topo();
        let m: MessageSet =
            [(pid(&t, &[0, 1, 2]), 1.0), (pid(&t, &[3, 2]), 2.0), (pid(&t, &[2]), 3.0)]
                .into_iter()
                .collect();
        let e = m.exclusion(ns(&[1]), t.index());
        assert_eq!(e.len(), 2);
        assert!(!e.contains_path(pid(&t, &[0, 1, 2])));
        // Exclusion on nothing is identity.
        assert_eq!(m.exclusion(NodeSet::EMPTY, t.index()), m);
    }

    #[test]
    fn consistency_per_initiator() {
        let t = topo();
        let mut m = MessageSet::new();
        m.insert(pid(&t, &[0, 2]), 5.0);
        m.insert(pid(&t, &[0, 1, 2]), 5.0);
        assert!(m.is_consistent(t.index()));
        m.insert(pid(&t, &[0, 3, 2]), 6.0);
        assert!(!m.is_consistent(t.index()));
        // … but excluding the offending path restores consistency.
        assert!(m.exclusion(ns(&[3]), t.index()).is_consistent(t.index()));
    }

    #[test]
    fn value_of_initiator() {
        let t = topo();
        let m: MessageSet =
            [(pid(&t, &[3, 2]), 8.0), (pid(&t, &[1, 2]), 3.0)].into_iter().collect();
        assert_eq!(m.value_of(NodeId::new(3), t.index()), Some(8.0));
        assert_eq!(m.value_of(NodeId::new(2), t.index()), None);
        assert_eq!(m.initiators(t.index()), ns(&[1, 3]));
    }

    #[test]
    fn fullness_against_requirements() {
        let t = topo();
        let m: MessageSet = [(pid(&t, &[0, 2]), 1.0), (pid(&t, &[2]), 0.0)].into_iter().collect();
        assert!(m.is_full_for(&[pid(&t, &[2]), pid(&t, &[0, 2])]));
        assert!(!m.is_full_for(&[pid(&t, &[2]), pid(&t, &[1, 2])]));
        assert!(m.is_full_for(&[]));
    }

    #[test]
    fn payload_round_trip_and_fingerprint() {
        let t = topo();
        let m: MessageSet =
            [(pid(&t, &[0, 2]), 1.5), (pid(&t, &[1, 2]), 2.5)].into_iter().collect();
        let pay = CompletePayload::from_message_set(&m);
        assert_eq!(pay.len(), 2);
        assert!(pay.is_consistent(t.index()));
        assert_eq!(pay.value_of(NodeId::new(1), t.index()), Some(2.5));
        assert_eq!(pay.to_message_set(), m);

        let same = CompletePayload::from_message_set(&m.clone());
        assert_eq!(pay.fingerprint(), same.fingerprint());
        let different: MessageSet = [(pid(&t, &[0, 2]), 1.5)].into_iter().collect();
        assert_ne!(pay.fingerprint(), CompletePayload::from_message_set(&different).fingerprint());
    }

    #[test]
    fn payload_inconsistency_detected() {
        let t = topo();
        let m: MessageSet =
            [(pid(&t, &[0, 2]), 1.0), (pid(&t, &[0, 1, 2]), 2.0)].into_iter().collect();
        assert!(!CompletePayload::from_message_set(&m).is_consistent(t.index()));
    }

    #[test]
    fn deterministic_iteration_order() {
        let t = topo();
        let m: MessageSet =
            [(pid(&t, &[2]), 0.0), (pid(&t, &[0, 2]), 1.0), (pid(&t, &[1, 2]), 2.0)]
                .into_iter()
                .collect();
        let order: Vec<PathId> = m.paths().collect();
        let mut sorted = order.clone();
        sorted.sort();
        assert_eq!(order, sorted);
    }
}
