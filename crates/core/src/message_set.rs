//! Message sets (Section 4.1 of the paper, Definitions 7–9).
//!
//! A message set `M` accumulates value–path pairs `(x, p)`; the paper's
//! three operations on it drive Algorithm BW:
//!
//! * **exclusion** `M|_Ā` — keep only messages whose path avoids `A`;
//! * **consistency** — all paths from the same initiator report one value;
//! * **fullness** for `(A, v)` — every redundant path avoiding `A` and
//!   terminating at `v` has reported.
//!
//! # Columnar layout
//!
//! [`PathId`]s are dense and topology-relative: the [`PathIndex`] numbers
//! the whole enumerated population `0..P`, so a message set over that
//! population needs no tree or hash structure at all. [`MessageSet`] stores
//! two columns indexed directly by id:
//!
//! * a flat `f64` **value column** (`values[id]` is the value reported
//!   along path `id`), and
//! * a multi-word `u64` **presence bitmap** (bit `id` set iff path `id`
//!   has reported).
//!
//! `insert`/`lookup` are O(1) array ops; iteration walks the set bits of
//! the bitmap in id order (deterministic and identical at every node). The
//! set operations pair the presence bitmap with the index's precomputed
//! per-node masks ([`PathIndex::member_words`] et al.) and run word at a
//! time: exclusion is `present & !excluded`, fullness for `(A, v)` is
//! `terminal & !excluded & !present == 0`, with one AND/ANDNOT/popcount
//! per 64 paths — branch-light scans the compiler can vectorize.
//!
//! Ids are only meaningful relative to the topology whose index interned
//! them, and the columns assume the ids they hold are *dense*: memory is
//! proportional to the highest inserted id, which for validated protocol
//! traffic is bounded by the population size (and in practice by the local
//! terminal's contiguous id range, since ids are assigned terminal-major).
//! Never insert unvalidated wire ids — resolve them through the index
//! first, exactly as the validation boundary already does.
//!
//! # Wire form
//!
//! The columnar layout is an in-memory representation only. On the wire
//! (serde) a message set travels as the sparse `(PathId, f64)` entry list
//! in id order — the same canonical form [`CompletePayload`] uses — so the
//! representation can change without breaking wire compatibility. The
//! container-level `from`/`into` attributes route (de)serialization
//! through the sparse form.
//!
//! # Reference implementation
//!
//! The pre-columnar `BTreeMap<PathId, f64>` implementation survives as
//! `reference::MessageSet` (feature `reference-messageset`, always on
//! under `cfg(test)`), together with differential tests asserting the two
//! backends agree on every observable. See `tests/differential.rs` for the
//! generated-operation-sequence harness.

use dbac_graph::{NodeId, NodeSet, PathId, PathIndex};
use serde::{Deserialize, Serialize};
use std::collections::hash_map::RandomState;
use std::collections::BTreeMap;
use std::hash::{BuildHasher, Hash, Hasher};
use std::sync::OnceLock;

#[cfg(any(test, feature = "reference-messageset"))]
pub mod reference;

/// An accumulated set of `(value, path)` messages, keyed by interned path.
///
/// The first value received for a path wins (matching RedundantFlood's
/// "first message with path p" rule); a path can therefore never report two
/// values *within one set*. Iteration order is id order, which is
/// deterministic and identical at every node.
///
/// Storage is columnar (see the module docs): a dense value column plus a
/// presence bitmap, both indexed by [`PathId`]. Columns grow on demand to
/// the highest inserted id; [`MessageSet::with_capacity`] pre-sizes them.
#[derive(Clone, Default, Serialize, Deserialize)]
#[serde(from = "Vec<(PathId, f64)>", into = "Vec<(PathId, f64)>")]
pub struct MessageSet {
    /// Value column: `values[id]` is meaningful iff presence bit `id` is
    /// set. Slots never inserted hold 0.0 but are never read.
    values: Vec<f64>,
    /// Presence bitmap, one bit per id, in `u64` words.
    present: Vec<u64>,
    /// Number of set presence bits (cached for O(1) `len`).
    len: usize,
}

impl MessageSet {
    /// Creates an empty message set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty set with columns pre-sized for ids `0..capacity`
    /// (use `index.len()` to cover a whole population).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        MessageSet {
            values: Vec::with_capacity(capacity),
            present: Vec::with_capacity(capacity.div_ceil(64)),
            len: 0,
        }
    }

    /// Grows the columns to cover `id`.
    fn grow_to(&mut self, id: usize) {
        if id >= self.values.len() {
            self.values.resize(id + 1, 0.0);
        }
        let word = id / 64;
        if word >= self.present.len() {
            self.present.resize(word + 1, 0);
        }
    }

    /// Inserts `(value, path)`; returns `false` (and keeps the original) if
    /// the path already reported.
    pub fn insert(&mut self, path: PathId, value: f64) -> bool {
        let id = path.index();
        self.grow_to(id);
        let (word, bit) = (id / 64, 1u64 << (id % 64));
        if self.present[word] & bit != 0 {
            return false;
        }
        self.present[word] |= bit;
        self.values[id] = value;
        self.len += 1;
        true
    }

    /// Number of messages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no message has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns `true` if `path` has reported.
    #[must_use]
    pub fn contains_path(&self, path: PathId) -> bool {
        let id = path.index();
        self.present.get(id / 64).is_some_and(|w| w & (1u64 << (id % 64)) != 0)
    }

    /// The value reported along `path`, if any.
    #[must_use]
    pub fn value_on_path(&self, path: PathId) -> Option<f64> {
        self.contains_path(path).then(|| self.values[path.index()])
    }

    /// Iterates over `(path, value)` in deterministic (id) order.
    pub fn iter(&self) -> impl Iterator<Item = (PathId, f64)> + '_ {
        self.paths().map(|p| (p, self.values[p.index()]))
    }

    /// The paper's `P(M)`: the set of propagation paths, in id order.
    pub fn paths(&self) -> impl Iterator<Item = PathId> + '_ {
        self.present.iter().enumerate().flat_map(|(w, &word)| {
            let base = w * 64;
            BitIter(word).map(move |b| PathId::from_raw((base + b) as u32))
        })
    }

    /// The exclusion `M|_Ā` (Definition 7): messages whose path avoids `A`.
    ///
    /// One ANDNOT per word of the presence bitmap against the index's
    /// precomputed member masks; the value column is shared by clone
    /// (excluded slots simply become unreachable).
    #[must_use]
    pub fn exclusion(&self, a: NodeSet, index: &PathIndex) -> MessageSet {
        let mut out = self.clone();
        if a.is_empty() || self.len == 0 {
            return out;
        }
        let mut len = 0usize;
        for (w, word) in out.present.iter_mut().enumerate() {
            *word &= !index.excluded_word(a, w);
            len += word.count_ones() as usize;
        }
        out.len = len;
        out
    }

    /// Consistency (Definition 8): every initiator reports a unique value.
    #[must_use]
    pub fn is_consistent(&self, index: &PathIndex) -> bool {
        values_consistent(self.iter(), index)
    }

    /// The paper's `value_q(M)`: the value reported by initiator `q`.
    /// Unique when the set is consistent; otherwise the first in id order.
    ///
    /// A word-at-a-time AND of the presence bitmap against the initiator
    /// mask; the answer is the first surviving bit.
    #[must_use]
    pub fn value_of(&self, q: NodeId, index: &PathIndex) -> Option<f64> {
        let init = index.init_words(q);
        for (w, &word) in self.present.iter().enumerate() {
            let hit = word & init.get(w).copied().unwrap_or(0);
            if hit != 0 {
                let id = w * 64 + hit.trailing_zeros() as usize;
                return Some(self.values[id]);
            }
        }
        None
    }

    /// Fullness (Definition 9) against a pre-enumerated requirement list:
    /// every required path has reported.
    #[must_use]
    pub fn is_full_for(&self, required: &[PathId]) -> bool {
        required.iter().all(|&p| self.contains_path(p))
    }

    /// Fullness for `(a, v)` (Definition 9) straight off the masks: every
    /// pool path ending at `v` and avoiding `a` has reported. One
    /// AND/ANDNOT per word — no requirement list needs materializing.
    #[must_use]
    pub fn is_full_avoiding(&self, a: NodeSet, v: NodeId, index: &PathIndex) -> bool {
        let terminal = index.terminal_words(v);
        (0..index.word_count()).all(|w| {
            let required = terminal[w] & !index.excluded_word(a, w);
            required & !self.present.get(w).copied().unwrap_or(0) == 0
        })
    }

    /// The set of initiators appearing in the set.
    #[must_use]
    pub fn initiators(&self, index: &PathIndex) -> NodeSet {
        self.paths().map(|p| index.init(p)).collect()
    }

    /// The presence-bitmap word at `w` (0 for words the columns never grew
    /// to). The raw column the witness-thread mask scans AND against —
    /// crate-internal so the columnar layout stays an implementation
    /// detail.
    #[must_use]
    pub(crate) fn present_word(&self, w: usize) -> u64 {
        self.present.get(w).copied().unwrap_or(0)
    }

    /// The value-column slot for `id`, without a presence check. Only
    /// meaningful for ids whose presence bit is set — masked gathers read
    /// this after ANDing the presence word, which also guarantees the
    /// columns grew past `id`.
    pub(crate) fn value_at(&self, id: usize) -> f64 {
        self.values[id]
    }
}

/// Equality is by contents — the `(path, value)` entries — not by column
/// capacity: a grown-then-excluded set equals a never-grown one.
impl PartialEq for MessageSet {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl std::fmt::Debug for MessageSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl FromIterator<(PathId, f64)> for MessageSet {
    fn from_iter<I: IntoIterator<Item = (PathId, f64)>>(iter: I) -> Self {
        let mut m = MessageSet::new();
        for (p, v) in iter {
            m.insert(p, v);
        }
        m
    }
}

/// Wire ingress: the sparse entry-list form (duplicate paths keep the
/// first value, as everywhere else).
///
/// Trust boundary: this impl cannot see a [`PathIndex`], so it cannot
/// validate ids — and the columns are dense, so memory is proportional to
/// the *highest* id in the list, not the entry count. Deserialized bytes
/// from an untrusted peer must be id-validated (`PathIndex::contains_id`)
/// *before* a set is materialized from them, exactly as the protocol's
/// validation boundary already does for every wire path; a set built from
/// unvalidated ids can also panic later inside the index-based operations.
impl From<Vec<(PathId, f64)>> for MessageSet {
    fn from(entries: Vec<(PathId, f64)>) -> Self {
        entries.into_iter().collect()
    }
}

/// Wire egress: the sparse entry list in canonical id order.
impl From<MessageSet> for Vec<(PathId, f64)> {
    fn from(m: MessageSet) -> Self {
        m.iter().collect()
    }
}

/// Iterator over the set bit positions of one word, ascending.
struct BitIter(u64);

impl Iterator for BitIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let b = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(b)
    }
}

/// Process-wide random fingerprint seed. Payload entries are
/// Byzantine-influenced bytes, so the fingerprint hash must not be
/// predictable across processes (hash-flood resistance, same story as the
/// seeded maps in `witness.rs`). One seed per process keeps fingerprints
/// comparable everywhere they are actually compared — all comparisons are
/// receiver-local, and the fingerprint never crosses the wire (ingress
/// recomputes it).
fn fingerprint_seed() -> &'static RandomState {
    static SEED: OnceLock<RandomState> = OnceLock::new();
    SEED.get_or_init(RandomState::new)
}

fn fingerprint_entries(entries: &[(PathId, f64)]) -> u64 {
    let mut h = fingerprint_seed().build_hasher();
    for &(p, v) in entries {
        p.raw().hash(&mut h);
        v.to_bits().hash(&mut h);
    }
    entries.len().hash(&mut h);
    h.finish()
}

fn values_consistent(entries: impl Iterator<Item = (PathId, f64)>, index: &PathIndex) -> bool {
    let mut seen: BTreeMap<NodeId, u64> = BTreeMap::new();
    for (p, v) in entries {
        match seen.entry(index.init(p)) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(v.to_bits());
            }
            std::collections::btree_map::Entry::Occupied(e) => {
                if *e.get() != v.to_bits() {
                    return false;
                }
            }
        }
    }
    true
}

/// The immutable payload of a `COMPLETE` message: a snapshot of the
/// initiator's `M_c|_F̄` at the moment its Maximal-Consistency condition
/// fired (Algorithm 1, line 11). Entries are kept sorted by id — ids are
/// canonical across nodes — so two payloads are equal iff their contents
/// are.
#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(from = "Vec<(PathId, f64)>", into = "Vec<(PathId, f64)>")]
pub struct CompletePayload {
    entries: Vec<(PathId, f64)>,
    /// Content hash, computed once at construction — fingerprinting happens
    /// on every arrival, so it must not rehash the entries each time.
    ///
    /// Trust boundary: the fingerprint is *derived* state and must never be
    /// accepted from the wire — the witness logic counts "same message" by
    /// fingerprint equality, so a forgeable hash would let a Byzantine
    /// sender alias distinct payloads. The container-level `from`/`into`
    /// attributes make the wire format the bare entry list: deserialization
    /// is forced through [`CompletePayload::from_entries`], which recomputes
    /// the hash, so wire ingress cannot supply its own.
    fingerprint: u64,
}

impl From<Vec<(PathId, f64)>> for CompletePayload {
    fn from(entries: Vec<(PathId, f64)>) -> Self {
        CompletePayload::from_entries(entries)
    }
}

impl From<CompletePayload> for Vec<(PathId, f64)> {
    fn from(payload: CompletePayload) -> Self {
        payload.entries
    }
}

/// Equality is by entries alone: the fingerprint is derived state and is
/// not serialized, so it must not participate in comparisons.
impl PartialEq for CompletePayload {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
    }
}

impl CompletePayload {
    /// Snapshots a message set into a canonical payload.
    #[must_use]
    pub fn from_message_set(m: &MessageSet) -> Self {
        CompletePayload::from_entries(m.iter().collect())
    }

    /// Builds a payload from raw `(path, value)` entries — the only way to
    /// construct one, so the cached fingerprint always matches the entries
    /// (wire ingress cannot supply its own).
    #[must_use]
    pub fn from_entries(mut entries: Vec<(PathId, f64)>) -> Self {
        entries.sort_unstable_by_key(|&(p, _)| p);
        let fingerprint = fingerprint_entries(&entries);
        CompletePayload { entries, fingerprint }
    }

    /// The `(path, value)` entries in canonical (id) order.
    #[must_use]
    pub fn entries(&self) -> &[(PathId, f64)] {
        &self.entries
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the payload carries no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Consistency of the payload (Definition 8).
    #[must_use]
    pub fn is_consistent(&self, index: &PathIndex) -> bool {
        values_consistent(self.entries.iter().copied(), index)
    }

    /// `value_q` of the payload: the (first) value reported by initiator `q`.
    #[must_use]
    pub fn value_of(&self, q: NodeId, index: &PathIndex) -> Option<f64> {
        self.entries.iter().find(|&&(p, _)| index.init(p) == q).map(|&(_, v)| v)
    }

    /// A content fingerprint used to compare payloads received over
    /// different paths ("the same message", Algorithm 1 line 12). Ids are
    /// canonical per topology, so recomputing the fingerprint at any node
    /// of this process yields the same value. O(1): the hash is
    /// precomputed at construction.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Rebuilds a [`MessageSet`] view of the payload.
    #[must_use]
    pub fn to_message_set(&self) -> MessageSet {
        self.entries.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precompute::Topology;
    use crate::test_support::{clique_topo, pid};

    fn topo() -> Topology {
        clique_topo(4, 1)
    }

    fn ns(ids: &[usize]) -> NodeSet {
        ids.iter().map(|&i| NodeId::new(i)).collect()
    }

    #[test]
    fn first_value_per_path_wins() {
        let t = topo();
        let p01 = pid(&t, &[0, 1]);
        let mut m = MessageSet::new();
        assert!(m.insert(p01, 1.0));
        assert!(!m.insert(p01, 9.0));
        assert_eq!(m.value_on_path(p01), Some(1.0));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn exclusion_filters_by_path_nodes() {
        let t = topo();
        let m: MessageSet =
            [(pid(&t, &[0, 1, 2]), 1.0), (pid(&t, &[3, 2]), 2.0), (pid(&t, &[2]), 3.0)]
                .into_iter()
                .collect();
        let e = m.exclusion(ns(&[1]), t.index());
        assert_eq!(e.len(), 2);
        assert!(!e.contains_path(pid(&t, &[0, 1, 2])));
        // Exclusion on nothing is identity.
        assert_eq!(m.exclusion(NodeSet::EMPTY, t.index()), m);
    }

    #[test]
    fn consistency_per_initiator() {
        let t = topo();
        let mut m = MessageSet::new();
        m.insert(pid(&t, &[0, 2]), 5.0);
        m.insert(pid(&t, &[0, 1, 2]), 5.0);
        assert!(m.is_consistent(t.index()));
        m.insert(pid(&t, &[0, 3, 2]), 6.0);
        assert!(!m.is_consistent(t.index()));
        // … but excluding the offending path restores consistency.
        assert!(m.exclusion(ns(&[3]), t.index()).is_consistent(t.index()));
    }

    #[test]
    fn value_of_initiator() {
        let t = topo();
        let m: MessageSet =
            [(pid(&t, &[3, 2]), 8.0), (pid(&t, &[1, 2]), 3.0)].into_iter().collect();
        assert_eq!(m.value_of(NodeId::new(3), t.index()), Some(8.0));
        assert_eq!(m.value_of(NodeId::new(2), t.index()), None);
        assert_eq!(m.initiators(t.index()), ns(&[1, 3]));
    }

    #[test]
    fn fullness_against_requirements() {
        let t = topo();
        let m: MessageSet = [(pid(&t, &[0, 2]), 1.0), (pid(&t, &[2]), 0.0)].into_iter().collect();
        assert!(m.is_full_for(&[pid(&t, &[2]), pid(&t, &[0, 2])]));
        assert!(!m.is_full_for(&[pid(&t, &[2]), pid(&t, &[1, 2])]));
        assert!(m.is_full_for(&[]));
    }

    #[test]
    fn mask_fullness_matches_requirement_list() {
        // is_full_avoiding ≡ is_full_for over the filtered pool, across
        // every (guess, terminal) pair of a small topology.
        let t = topo();
        let index = t.index();
        for v in t.graph().nodes() {
            // A set holding v's full pool is full for every guess at v …
            let full: MessageSet = t.required_paths_to(v).iter().map(|&p| (p, 1.0)).collect();
            for &guess in t.guesses() {
                let required: Vec<PathId> = t
                    .required_paths_to(v)
                    .iter()
                    .copied()
                    .filter(|&p| !index.intersects(p, guess))
                    .collect();
                assert_eq!(full.is_full_avoiding(guess, v, index), full.is_full_for(&required));
                assert!(full.is_full_avoiding(guess, v, index));
                // … and dropping any required path breaks exactly the
                // guesses that still require it.
                if let Some(&missing) = required.first() {
                    let partial: MessageSet = full.iter().filter(|&(p, _)| p != missing).collect();
                    assert!(!partial.is_full_avoiding(guess, v, index));
                    assert_eq!(
                        partial.is_full_avoiding(guess, v, index),
                        partial.is_full_for(&required)
                    );
                }
            }
        }
    }

    #[test]
    fn payload_round_trip_and_fingerprint() {
        let t = topo();
        let m: MessageSet =
            [(pid(&t, &[0, 2]), 1.5), (pid(&t, &[1, 2]), 2.5)].into_iter().collect();
        let pay = CompletePayload::from_message_set(&m);
        assert_eq!(pay.len(), 2);
        assert!(pay.is_consistent(t.index()));
        assert_eq!(pay.value_of(NodeId::new(1), t.index()), Some(2.5));
        assert_eq!(pay.to_message_set(), m);

        let same = CompletePayload::from_message_set(&m.clone());
        assert_eq!(pay.fingerprint(), same.fingerprint());
        let different: MessageSet = [(pid(&t, &[0, 2]), 1.5)].into_iter().collect();
        assert_ne!(pay.fingerprint(), CompletePayload::from_message_set(&different).fingerprint());
    }

    #[test]
    fn payload_inconsistency_detected() {
        let t = topo();
        let m: MessageSet =
            [(pid(&t, &[0, 2]), 1.0), (pid(&t, &[0, 1, 2]), 2.0)].into_iter().collect();
        assert!(!CompletePayload::from_message_set(&m).is_consistent(t.index()));
    }

    #[test]
    fn deterministic_iteration_order() {
        let t = topo();
        let m: MessageSet =
            [(pid(&t, &[2]), 0.0), (pid(&t, &[0, 2]), 1.0), (pid(&t, &[1, 2]), 2.0)]
                .into_iter()
                .collect();
        let order: Vec<PathId> = m.paths().collect();
        let mut sorted = order.clone();
        sorted.sort();
        assert_eq!(order, sorted);
    }

    #[test]
    fn sparse_wire_form_round_trips() {
        let t = topo();
        let m: MessageSet =
            [(pid(&t, &[2]), 0.5), (pid(&t, &[0, 2]), -1.0), (pid(&t, &[1, 2]), 2.0)]
                .into_iter()
                .collect();
        let wire: Vec<(PathId, f64)> = m.clone().into();
        assert!(wire.windows(2).all(|w| w[0].0 < w[1].0), "canonical id order");
        assert_eq!(MessageSet::from(wire), m);
        // Duplicate wire entries: first value wins, as in live insertion.
        let dup = vec![(pid(&t, &[2]), 7.0), (pid(&t, &[2]), 9.0)];
        assert_eq!(MessageSet::from(dup).value_on_path(pid(&t, &[2])), Some(7.0));
    }

    /// Property tests: the columnar set and the BTreeMap reference model
    /// agree on every observable under random operation interleavings over
    /// arbitrary small topologies. The heavyweight generated-sequence
    /// harness lives in `tests/differential.rs` (feature
    /// `reference-messageset`); these run on every plain `cargo test`.
    mod equivalence {
        use super::super::{reference, MessageSet};
        use crate::config::FloodMode;
        use crate::precompute::Topology;
        use crate::test_support::topo_of;
        use dbac_graph::{generators, NodeSet, PathId};
        use proptest::prelude::*;
        use std::sync::OnceLock;

        /// The topology classes the properties quantify over.
        fn catalog() -> &'static Vec<Topology> {
            static CATALOG: OnceLock<Vec<Topology>> = OnceLock::new();
            CATALOG.get_or_init(|| {
                vec![
                    topo_of(generators::clique(4), 1, FloodMode::Redundant),
                    topo_of(generators::clique(5), 1, FloodMode::SimpleOnly),
                    topo_of(
                        generators::two_cliques_bridged(3, &[(0, 0)], &[(2, 2)]),
                        1,
                        FloodMode::Redundant,
                    ),
                    topo_of(generators::figure_1a(), 1, FloodMode::Redundant),
                ]
            })
        }

        /// Decodes one op word into an insertion over the population.
        fn decode(word: u64, population: usize) -> (PathId, f64) {
            let path = PathId::from_raw((word % population as u64) as u32);
            // A tiny value alphabet maximizes collisions (consistency and
            // first-value-wins are only interesting under collisions);
            // include the 0.0 / -0.0 bit distinction.
            let value = [0.0, -0.0, 1.0, -1.5, 7.25][(word >> 32) as usize % 5];
            (path, value)
        }

        /// Asserts every observable of the two backends is identical.
        fn assert_equivalent(t: &Topology, col: &MessageSet, model: &reference::MessageSet) {
            let index = t.index();
            prop_assert_eq!(col.len(), model.len());
            prop_assert_eq!(col.is_empty(), model.is_empty());
            let col_entries: Vec<(PathId, u64)> =
                col.iter().map(|(p, v)| (p, v.to_bits())).collect();
            let model_entries: Vec<(PathId, u64)> =
                model.iter().map(|(p, v)| (p, v.to_bits())).collect();
            prop_assert_eq!(col_entries, model_entries, "iteration differs");
            prop_assert_eq!(col.is_consistent(index), model.is_consistent(index));
            prop_assert_eq!(col.initiators(index), model.initiators(index));
            for v in t.graph().nodes() {
                prop_assert_eq!(
                    col.value_of(v, index).map(f64::to_bits),
                    model.value_of(v, index).map(f64::to_bits),
                    "value_of({}) differs",
                    v
                );
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Random insert interleavings leave identical sets, and every
            /// per-path probe agrees.
            #[test]
            fn inserts_probe_identically(
                topo_sel in 0usize..4,
                words in prop::collection::vec(0u64..u64::MAX, 1..48),
            ) {
                let t = &catalog()[topo_sel];
                let population = t.index().len();
                let mut col = MessageSet::new();
                let mut model = reference::MessageSet::new();
                for &w in &words {
                    let (p, v) = decode(w, population);
                    prop_assert_eq!(col.insert(p, v), model.insert(p, v));
                    prop_assert_eq!(col.contains_path(p), model.contains_path(p));
                    prop_assert_eq!(
                        col.value_on_path(p).map(f64::to_bits),
                        model.value_on_path(p).map(f64::to_bits)
                    );
                }
                assert_equivalent(t, &col, &model);
            }

            /// Exclusion agrees for every guess-sized fault set, and the
            /// excluded sets are again equivalent (closure under the op).
            #[test]
            fn exclusion_agrees_on_every_guess(
                topo_sel in 0usize..4,
                words in prop::collection::vec(0u64..u64::MAX, 0..32),
            ) {
                let t = &catalog()[topo_sel];
                let population = t.index().len();
                let mut col = MessageSet::new();
                let mut model = reference::MessageSet::new();
                for &w in &words {
                    let (p, v) = decode(w, population);
                    col.insert(p, v);
                    model.insert(p, v);
                }
                for &guess in t.guesses() {
                    assert_equivalent(t, &col.exclusion(guess, t.index()), &model.exclusion(guess, t.index()));
                }
                // Arbitrary (non-guess) sets too, including the universe.
                let n = t.graph().node_count();
                for set in [NodeSet::universe(n), NodeSet::universe(n.min(2))] {
                    assert_equivalent(t, &col.exclusion(set, t.index()), &model.exclusion(set, t.index()));
                }
            }

            /// Mask-scan fullness agrees with the reference filter for every
            /// (guess, terminal) pair, as does the requirement-list form.
            #[test]
            fn fullness_agrees_on_every_guess_terminal_pair(
                topo_sel in 0usize..4,
                words in prop::collection::vec(0u64..u64::MAX, 0..64),
            ) {
                let t = &catalog()[topo_sel];
                let index = t.index();
                let mut col = MessageSet::new();
                let mut model = reference::MessageSet::new();
                for &w in &words {
                    let (p, v) = decode(w, index.len());
                    col.insert(p, v);
                    model.insert(p, v);
                }
                for &guess in t.guesses() {
                    for v in t.graph().nodes() {
                        prop_assert_eq!(
                            col.is_full_avoiding(guess, v, index),
                            model.is_full_avoiding(guess, v, index),
                            "fullness({:?}, {}) differs", guess, v
                        );
                        let required: Vec<PathId> = index
                            .paths_ending_at(v)
                            .iter()
                            .copied()
                            .filter(|&p| !index.intersects(p, guess))
                            .collect();
                        prop_assert_eq!(col.is_full_for(&required), model.is_full_for(&required));
                    }
                }
            }

            /// The sparse wire form round-trips through both backends.
            #[test]
            fn wire_form_is_backend_agnostic(
                topo_sel in 0usize..4,
                words in prop::collection::vec(0u64..u64::MAX, 0..32),
            ) {
                let t = &catalog()[topo_sel];
                let mut col = MessageSet::new();
                let mut model = reference::MessageSet::new();
                for &w in &words {
                    let (p, v) = decode(w, t.index().len());
                    col.insert(p, v);
                    model.insert(p, v);
                }
                let wire: Vec<(PathId, f64)> = col.clone().into();
                let model_wire: Vec<(PathId, f64)> = model.iter().collect();
                prop_assert_eq!(
                    wire.iter().map(|&(p, v)| (p, v.to_bits())).collect::<Vec<_>>(),
                    model_wire.iter().map(|&(p, v)| (p, v.to_bits())).collect::<Vec<_>>()
                );
                prop_assert_eq!(&MessageSet::from(wire), &col);
            }
        }
    }

    #[test]
    fn equality_ignores_column_capacity() {
        let t = topo();
        let (small, large) = (pid(&t, &[2]), pid(&t, &[0, 1, 2]));
        let mut grown = MessageSet::new();
        grown.insert(large, 1.0);
        grown.insert(small, 2.0);
        let excluded = grown.exclusion(ns(&[0]), t.index());
        let mut fresh = MessageSet::new();
        fresh.insert(small, 2.0);
        // `excluded` still owns full-size columns; `fresh` never grew.
        assert_eq!(excluded, fresh);
        assert_eq!(fresh, excluded);
        assert_ne!(grown, fresh);
    }
}
