//! Protocol parameters.

use serde::{Deserialize, Serialize};

/// Which paths the value flood uses.
///
/// The paper floods state values along **redundant** paths (Appendix E);
/// [`FloodMode::SimpleOnly`] is an ablation that restricts flooding (and
/// the fullness requirement) to simple paths, quantifying what the
/// redundant-path machinery buys (experiment E11).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FloodMode {
    /// RedundantFlood as in the paper (Appendix E).
    #[default]
    Redundant,
    /// Ablation: flood and require simple paths only.
    SimpleOnly,
}

/// Static protocol parameters shared by every node.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProtocolConfig {
    /// Upper bound on the number of Byzantine nodes.
    pub f: usize,
    /// Agreement parameter: honest outputs must be within `ε`.
    pub epsilon: f64,
    /// A-priori known input range `[lo, hi]` (the paper's `[0, K]`).
    pub range: (f64, f64),
    /// Number of asynchronous rounds to execute; derived from `range` and
    /// `epsilon` via [`num_rounds`] unless overridden.
    pub rounds: u32,
    /// Value-flood path discipline.
    pub flood_mode: FloodMode,
}

impl ProtocolConfig {
    /// Builds a configuration running exactly the number of rounds the
    /// paper's termination rule prescribes: the first `r > log₂(K/ε)`
    /// (Section 4.6).
    ///
    /// # Panics
    ///
    /// Panics if `epsilon ≤ 0`, the range is empty, or either bound is not
    /// finite.
    #[must_use]
    pub fn new(f: usize, epsilon: f64, range: (f64, f64)) -> Self {
        assert!(epsilon > 0.0 && epsilon.is_finite(), "epsilon must be positive and finite");
        assert!(
            range.0.is_finite() && range.1.is_finite() && range.0 <= range.1,
            "input range must be a finite non-empty interval"
        );
        let rounds = num_rounds(range.1 - range.0, epsilon);
        ProtocolConfig { f, epsilon, range, rounds, flood_mode: FloodMode::Redundant }
    }

    /// Overrides the round count (used by convergence-curve experiments).
    #[must_use]
    pub fn with_rounds(mut self, rounds: u32) -> Self {
        self.rounds = rounds;
        self
    }

    /// Selects the flood mode.
    #[must_use]
    pub fn with_flood_mode(mut self, mode: FloodMode) -> Self {
        self.flood_mode = mode;
        self
    }

    /// Width `K` of the input range.
    #[must_use]
    pub fn range_width(&self) -> f64 {
        self.range.1 - self.range.0
    }
}

/// The paper's termination bound (Section 4.6): the smallest round count
/// `R` such that `K / 2^R < ε`, i.e. the first `R > log₂(K/ε)`. Repeated
/// halving (Lemma 15) then guarantees ε-agreement.
///
/// # Example
///
/// ```
/// use dbac_core::config::num_rounds;
/// assert_eq!(num_rounds(10.0, 0.5), 5);   // 10/2⁵ = 0.3125 < 0.5
/// assert_eq!(num_rounds(8.0, 1.0), 4);    // strict: 8/2³ = 1 is not < 1
/// assert_eq!(num_rounds(0.25, 1.0), 0);   // K < ε: inputs already agree
/// ```
#[must_use]
pub fn num_rounds(width: f64, epsilon: f64) -> u32 {
    assert!(epsilon > 0.0, "epsilon must be positive");
    assert!(width >= 0.0 && width.is_finite(), "width must be non-negative and finite");
    let mut r = 0u32;
    let mut spread = width;
    while spread >= epsilon {
        spread /= 2.0;
        r += 1;
        assert!(r < 4_096, "unreasonable round count; check epsilon");
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_counts() {
        assert_eq!(num_rounds(10.0, 0.5), 5);
        assert_eq!(num_rounds(1.0, 1.0), 1, "strict inequality: need 0.5 < 1");
        assert_eq!(num_rounds(0.0, 0.1), 0);
        assert_eq!(num_rounds(100.0, 1.0), 7);
    }

    #[test]
    fn config_derives_rounds() {
        let c = ProtocolConfig::new(1, 0.5, (0.0, 10.0));
        assert_eq!(c.rounds, 5);
        assert_eq!(c.range_width(), 10.0);
        assert_eq!(c.flood_mode, FloodMode::Redundant);
        let c = c.with_rounds(2).with_flood_mode(FloodMode::SimpleOnly);
        assert_eq!(c.rounds, 2);
        assert_eq!(c.flood_mode, FloodMode::SimpleOnly);
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn rejects_bad_epsilon() {
        let _ = ProtocolConfig::new(1, 0.0, (0.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "finite non-empty interval")]
    fn rejects_bad_range() {
        let _ = ProtocolConfig::new(1, 0.5, (2.0, 1.0));
    }
}
