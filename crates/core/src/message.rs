//! Wire messages of the BW protocol.

use crate::message_set::CompletePayload;
use dbac_graph::{Digraph, NodeId, NodeSet, Path};
use std::sync::Arc;

/// Protocol round index.
pub type Round = u32;

/// A message on a directed link.
///
/// Paths on the wire end at the **sender**; the receiver extends them with
/// itself before storing or forwarding (Appendix E). Links are
/// authenticated: on receipt the runtime supplies the true edge tail, so a
/// message whose claimed path does not end at its sender is provably forged
/// and dropped (see [`validate_flood`] / [`validate_complete`]).
#[derive(Clone, Debug, PartialEq)]
pub enum ProtocolMsg {
    /// RedundantFlood of a state value (Algorithm 1 line 4 / Algorithm 4).
    Flood {
        /// Asynchronous round the value belongs to.
        round: Round,
        /// The propagated state value.
        value: f64,
        /// Propagation path so far (ends at the sender).
        path: Path,
    },
    /// FIFO-flooded `(M_c, COMPLETE(F))` (Algorithm 1 line 11, Appendix F).
    Complete {
        /// Round of the originating Maximal-Consistency event.
        round: Round,
        /// The suspect set `F` in `COMPLETE(F)`.
        suspects: NodeSet,
        /// Snapshot of the initiator's `M_c|_F̄`.
        payload: Arc<CompletePayload>,
        /// Propagation path so far (simple; ends at the sender).
        path: Path,
        /// The initiator's FIFO counter for this flood (Appendix F).
        seq: u64,
    },
}

impl ProtocolMsg {
    /// The round a message belongs to.
    #[must_use]
    pub fn round(&self) -> Round {
        match self {
            ProtocolMsg::Flood { round, .. } | ProtocolMsg::Complete { round, .. } => *round,
        }
    }
}

/// Validates an incoming flood message at node `me` and returns the stored
/// path (wire path extended with `me`). Returns `None` for forged or
/// malformed messages, which the paper's model allows a receiver to drop:
///
/// * the wire path must be a valid directed path of `g` ending at the
///   authenticated sender;
/// * the extension with `me` must still be a redundant path (honest relays
///   check this before forwarding, so violations prove Byzantine origin).
#[must_use]
pub fn validate_flood(g: &Digraph, me: NodeId, from: NodeId, path: &Path) -> Option<Path> {
    if path.ter() != from || from == me {
        return None;
    }
    if !path.is_valid_in(g) {
        return None;
    }
    let extended = path.extended(me).ok()?;
    if !g.has_edge(from, me) || !extended.is_redundant() {
        return None;
    }
    Some(extended)
}

/// Validates an incoming `COMPLETE` message at `me`: the wire path must be
/// a valid **simple** path ending at the sender, extend simply to `me`,
/// carry a positive FIFO sequence number, and its initiator must not be in
/// its own suspect set (honest initiators never suspect themselves,
/// Algorithm 1 line 5). Returns the extended path.
#[must_use]
pub fn validate_complete(
    g: &Digraph,
    me: NodeId,
    from: NodeId,
    path: &Path,
    suspects: NodeSet,
    seq: u64,
) -> Option<Path> {
    if path.ter() != from || from == me || seq == 0 {
        return None;
    }
    if !path.is_valid_in(g) || !path.is_simple() {
        return None;
    }
    if suspects.contains(path.init()) {
        return None;
    }
    let extended = path.extended(me).ok()?;
    if !g.has_edge(from, me) || !extended.is_simple() {
        return None;
    }
    Some(extended)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message_set::MessageSet;
    use dbac_graph::generators;

    fn id(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn p(idx: &[usize]) -> Path {
        Path::from_indices(idx).unwrap()
    }

    #[test]
    fn flood_validation_accepts_honest_extension() {
        let g = generators::clique(4);
        let ext = validate_flood(&g, id(2), id(1), &p(&[0, 1])).unwrap();
        assert_eq!(ext, p(&[0, 1, 2]));
    }

    #[test]
    fn flood_validation_rejects_forgeries() {
        let g = generators::clique(4);
        // Path does not end at the authenticated sender.
        assert!(validate_flood(&g, id(2), id(1), &p(&[0, 3])).is_none());
        // Path uses a non-edge.
        let sparse = Digraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        assert!(validate_flood(&sparse, id(2), id(1), &p(&[2, 1])).is_none());
        // Extension not redundant (three traversals of the same pair).
        let ext_breaker = p(&[0, 2, 0, 2, 0]);
        assert!(validate_flood(&g, id(2), id(0), &ext_breaker).is_none());
    }

    #[test]
    fn complete_validation_requires_simple_paths() {
        let g = generators::clique(4);
        assert!(validate_complete(&g, id(2), id(1), &p(&[0, 1]), NodeSet::EMPTY, 1).is_some());
        // Cycle in the wire path.
        assert!(validate_complete(&g, id(3), id(1), &p(&[0, 2, 0, 1]), NodeSet::EMPTY, 1).is_none());
        // Extension would repeat `me`.
        assert!(validate_complete(&g, id(0), id(1), &p(&[0, 1]), NodeSet::EMPTY, 1).is_none());
        // Zero sequence number.
        assert!(validate_complete(&g, id(2), id(1), &p(&[0, 1]), NodeSet::EMPTY, 0).is_none());
        // Initiator inside its own suspect set.
        let sus = NodeSet::singleton(id(0));
        assert!(validate_complete(&g, id(2), id(1), &p(&[0, 1]), sus, 1).is_none());
    }

    #[test]
    fn message_round_accessor() {
        let m = ProtocolMsg::Flood { round: 3, value: 1.0, path: p(&[0]) };
        assert_eq!(m.round(), 3);
        let payload = Arc::new(CompletePayload::from_message_set(&MessageSet::new()));
        let c = ProtocolMsg::Complete {
            round: 7,
            suspects: NodeSet::EMPTY,
            payload,
            path: p(&[0]),
            seq: 1,
        };
        assert_eq!(c.round(), 7);
    }
}
