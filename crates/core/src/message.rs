//! Wire messages of the BW protocol.

use crate::message_set::CompletePayload;
use crate::precompute::Topology;
use dbac_graph::{NodeId, NodeSet, PathId};
use std::sync::Arc;

/// Protocol round index.
pub type Round = u32;

/// A message on a directed link.
///
/// Paths travel as interned [`PathId`]s — the intern numbering is a pure
/// function of the shared topology, so ids are meaningful on the wire. A
/// wire path ends at the **sender**; the receiver extends it with itself
/// (one forwarding-table lookup) before storing or forwarding (Appendix E).
/// Links are authenticated: the runtime supplies the true edge tail, and a
/// Byzantine sender may carry *any* id bits, so [`validate_flood`] /
/// [`validate_complete`] resolve and reject unknown or inconsistent ids
/// rather than trusting them.
#[derive(Clone, Debug, PartialEq)]
pub enum ProtocolMsg {
    /// RedundantFlood of a state value (Algorithm 1 line 4 / Algorithm 4).
    Flood {
        /// Asynchronous round the value belongs to.
        round: Round,
        /// The propagated state value.
        value: f64,
        /// Propagation path so far (ends at the sender).
        path: PathId,
    },
    /// FIFO-flooded `(M_c, COMPLETE(F))` (Algorithm 1 line 11, Appendix F).
    Complete {
        /// Round of the originating Maximal-Consistency event.
        round: Round,
        /// The suspect set `F` in `COMPLETE(F)`.
        suspects: NodeSet,
        /// Snapshot of the initiator's `M_c|_F̄`.
        payload: Arc<CompletePayload>,
        /// Propagation path so far (simple; ends at the sender).
        path: PathId,
        /// The initiator's FIFO counter for this flood (Appendix F).
        seq: u64,
    },
}

impl ProtocolMsg {
    /// The round a message belongs to.
    #[must_use]
    pub fn round(&self) -> Round {
        match self {
            ProtocolMsg::Flood { round, .. } | ProtocolMsg::Complete { round, .. } => *round,
        }
    }
}

/// Validates an incoming flood message at node `me` and returns the stored
/// path (wire path extended with `me`). Returns `None` for forged or
/// malformed messages, which the paper's model allows a receiver to drop:
///
/// * the wire id must refer to an interned path (the population holds every
///   admissible path of the active flood mode, so an unknown id is provably
///   forged or inadmissible);
/// * the path must end at the authenticated sender, who must be a true
///   in-neighbor;
/// * the extension with `me` must stay in the population — exactly the
///   redundant-path (resp. simple-path, in the ablation) admissibility the
///   paper requires of honest relays.
///
/// Every check is O(1): intern metadata replaces the per-message path
/// re-validation and `is_redundant` re-scan of the unindexed design.
#[must_use]
pub fn validate_flood(topo: &Topology, me: NodeId, from: NodeId, wire: PathId) -> Option<PathId> {
    let index = topo.index();
    if !index.contains_id(wire) || from == me || index.ter(wire) != from {
        return None;
    }
    // The forwarding table is the admissibility authority: it is indexed by
    // the out-neighbors of ter(wire) = from, so a Some here also proves
    // (from, me) is a real edge.
    index.extend(wire, me)
}

/// Validates an incoming `COMPLETE` message at `me`: the wire id must
/// intern a **simple** path ending at the sender, extend simply to `me`,
/// carry a positive FIFO sequence number, and its initiator must not be in
/// its own suspect set (honest initiators never suspect themselves,
/// Algorithm 1 line 5). Returns the extended path.
#[must_use]
pub fn validate_complete(
    topo: &Topology,
    me: NodeId,
    from: NodeId,
    wire: PathId,
    suspects: NodeSet,
    seq: u64,
) -> Option<PathId> {
    let index = topo.index();
    if !index.contains_id(wire) || from == me || seq == 0 {
        return None;
    }
    if index.ter(wire) != from || !index.is_simple(wire) {
        return None;
    }
    if suspects.contains(index.init(wire)) {
        return None;
    }
    // As in validate_flood, the forwarding table proves (from, me) ∈ E.
    index.extend_simple(wire, me)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FloodMode;
    use crate::message_set::MessageSet;
    use crate::test_support::{pid, topo_of};
    use dbac_graph::{generators, Digraph, Path};

    fn id(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn topo(g: Digraph) -> Topology {
        topo_of(g, 1, FloodMode::Redundant)
    }

    #[test]
    fn flood_validation_accepts_honest_extension() {
        let t = topo(generators::clique(4));
        let ext = validate_flood(&t, id(2), id(1), pid(&t, &[0, 1])).unwrap();
        assert_eq!(ext, pid(&t, &[0, 1, 2]));
    }

    #[test]
    fn flood_validation_rejects_forgeries() {
        let t = topo(generators::clique(4));
        // Path does not end at the authenticated sender.
        assert!(validate_flood(&t, id(2), id(1), pid(&t, &[0, 3])).is_none());
        // Unknown id (nothing interned there).
        assert!(validate_flood(&t, id(2), id(1), PathId::from_raw(u32::MAX - 1)).is_none());
        // Path uses a non-edge: in a sparse graph the forged sequence is
        // simply not interned, so it cannot even be expressed as an id.
        let sparse = topo(Digraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap());
        assert!(sparse.index().resolve(&Path::from_indices(&[2, 1]).unwrap()).is_none());
        // A non-redundant sequence cannot even be expressed as an id …
        assert!(t.index().resolve(&Path::from_indices(&[0, 2, 0, 2, 0]).unwrap()).is_none());
        // … and a redundant wire path whose extension would break
        // redundancy is rejected by the forwarding table.
        let ext_breaker = pid(&t, &[2, 0, 1, 2, 0]);
        assert!(validate_flood(&t, id(1), id(0), ext_breaker).is_none());
    }

    #[test]
    fn complete_validation_requires_simple_paths() {
        let t = topo(generators::clique(4));
        assert!(validate_complete(&t, id(2), id(1), pid(&t, &[0, 1]), NodeSet::EMPTY, 1).is_some());
        // Cycle in the wire path.
        assert!(validate_complete(&t, id(3), id(1), pid(&t, &[0, 2, 0, 1]), NodeSet::EMPTY, 1)
            .is_none());
        // Extension would repeat `me`.
        assert!(validate_complete(&t, id(0), id(1), pid(&t, &[0, 1]), NodeSet::EMPTY, 1).is_none());
        // Zero sequence number.
        assert!(validate_complete(&t, id(2), id(1), pid(&t, &[0, 1]), NodeSet::EMPTY, 0).is_none());
        // Initiator inside its own suspect set.
        let sus = NodeSet::singleton(id(0));
        assert!(validate_complete(&t, id(2), id(1), pid(&t, &[0, 1]), sus, 1).is_none());
        // Unknown id.
        assert!(validate_complete(&t, id(2), id(1), PathId::from_raw(1 << 30), NodeSet::EMPTY, 1)
            .is_none());
    }

    #[test]
    fn message_round_accessor() {
        let t = topo(generators::clique(4));
        let m = ProtocolMsg::Flood { round: 3, value: 1.0, path: t.index().trivial(id(0)) };
        assert_eq!(m.round(), 3);
        let payload = Arc::new(CompletePayload::from_message_set(&MessageSet::new()));
        let c = ProtocolMsg::Complete {
            round: 7,
            suspects: NodeSet::EMPTY,
            payload,
            path: t.index().trivial(id(0)),
            seq: 1,
        };
        assert_eq!(c.round(), 7);
    }
}
