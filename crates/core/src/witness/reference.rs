//! The pre-columnar, counter-based witness state machine, kept as a
//! differential-testing oracle.
//!
//! This is the implementation the mask-batched [`RoundCore`](super::RoundCore)
//! replaced: per-guess progress tracked with incremental hash-map counters —
//! a `value_by_init` map per thread for Maximal-Consistency, a
//! `HashSet<(PathId, u64)>` dedup set plus a fingerprint-count map per
//! FIFO-Receive-All witness — updated on every arrival. It follows
//! Algorithm 1 line by line with no precomputed masks, which is exactly
//! what makes it a trustworthy model: the generated-sequence harness in
//! `tests/differential_witness.rs` and the property tests in the parent
//! module drive both state machines through identical flood/COMPLETE
//! sequences and require identical [`RoundAction`] streams.
//!
//! Compiled only under `cfg(test)` or the `reference-witness` feature —
//! production builds carry no second implementation.

use super::RoundAction;
use crate::filter::filter_and_average;
use crate::message_set::{CompletePayload, MessageSet};
use crate::precompute::Topology;
use dbac_conditions::cover::has_cover;
use dbac_graph::{FastHashMap, NodeId, NodeSet, PathId};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Static per-node plan: one entry per fault-set guess excluding the node
/// (the pre-mask design: requirement counts only, no word masks).
#[derive(Debug)]
pub struct NodePlan {
    me: NodeId,
    guesses: Vec<GuessPlan>,
}

/// Precomputed constants for one guess `F_v`.
#[derive(Debug)]
pub struct GuessPlan {
    /// The guessed fault set.
    pub guess: NodeSet,
    /// `reach_me(F_v)`.
    pub reach: NodeSet,
    /// Number of required flood paths (pool paths avoiding the guess).
    pub flood_required: usize,
    /// Per witness `c ∈ reach`: number of simple `(c, me)`-paths inside
    /// the reach set (the FIFO-Receive-All requirement).
    pub fra_required: Vec<(NodeId, usize)>,
}

impl NodePlan {
    /// Builds the plan for node `me`.
    #[must_use]
    pub fn new(topo: &Topology, me: NodeId) -> Self {
        let index = topo.index();
        let simple = topo.simple_paths_to(me);
        let mut guesses = Vec::new();
        for &guess in topo.guesses() {
            if guess.contains(me) {
                continue;
            }
            let reach = topo.reach_of(me, guess);
            let flood_required = index.required_count(guess, me);
            let mut per_c: FastHashMap<NodeId, usize> = FastHashMap::default();
            for &p in simple {
                if index.is_within(p, reach) {
                    *per_c.entry(index.init(p)).or_insert(0) += 1;
                }
            }
            let mut fra_required: Vec<(NodeId, usize)> = per_c.into_iter().collect();
            fra_required.sort_unstable_by_key(|&(c, _)| c);
            guesses.push(GuessPlan { guess, reach, flood_required, fra_required });
        }
        NodePlan { me, guesses }
    }

    /// The node this plan belongs to.
    #[must_use]
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// The per-guess plans.
    #[must_use]
    pub fn guesses(&self) -> &[GuessPlan] {
        &self.guesses
    }
}

struct ThreadState {
    plan_idx: usize,
    consistent: bool,
    value_by_init: FastHashMap<NodeId, u64>,
    flood_remaining: usize,
    mc_fired: bool,
    fra: FastHashMap<NodeId, FraProgress>,
    fra_remaining: usize,
    relevant_trackers: Vec<usize>,
}

/// FIFO-Receive-All progress for one witness. The dedup set and counters
/// are keyed by payload fingerprints — Byzantine-influenced bytes — so they
/// use the seeded default hasher rather than `FastHashMap`.
struct FraProgress {
    required: usize,
    seen: HashSet<(PathId, u64)>,
    counts: HashMap<u64, usize>,
    done: bool,
}

struct Obligation {
    component: NodeSet,
    q: NodeId,
    xq_bits: u64,
    satisfied: bool,
}

struct CompletenessTracker {
    consistent: bool,
    impossible: bool,
    pending: usize,
    obligations: Vec<Obligation>,
}

impl CompletenessTracker {
    /// A tracker blocks Verify iff its payload is consistent (inconsistent
    /// ones are skipped per Algorithm 1 line 24) but Completeness fails.
    fn blocking(&self) -> bool {
        self.consistent && (self.impossible || self.pending > 0)
    }
}

/// Per-round BW state for one node (counter-based oracle).
pub struct RoundCore {
    me: NodeId,
    n: usize,
    f: usize,
    started: bool,
    fired: bool,
    mset: MessageSet,
    // The maps below key on value bits or payload fingerprints — bytes a
    // Byzantine sender chooses — so they use the seeded default hasher.
    paths_by_init_value: HashMap<(NodeId, u64), Vec<NodeSet>>,
    threads: Vec<ThreadState>,
    trackers: Vec<CompletenessTracker>,
    tracker_index: HashMap<(NodeSet, u64), usize>,
    /// (q, value-bits) → obligations waiting on new paths carrying it.
    waiters: HashMap<(NodeId, u64), Vec<(usize, usize)>>,
}

impl RoundCore {
    /// Creates the round state for node `me`, eagerly cloning the plan's
    /// per-guess bookkeeping into fresh hash maps (the allocation pattern
    /// the columnar rewrite removed).
    #[must_use]
    pub fn new(topo: &Topology, plan: &NodePlan) -> Self {
        let threads = plan
            .guesses
            .iter()
            .enumerate()
            .map(|(i, g)| ThreadState {
                plan_idx: i,
                consistent: true,
                value_by_init: FastHashMap::default(),
                flood_remaining: g.flood_required,
                mc_fired: false,
                fra: g
                    .fra_required
                    .iter()
                    .map(|&(c, required)| {
                        (
                            c,
                            FraProgress {
                                required,
                                seen: HashSet::new(),
                                counts: HashMap::new(),
                                done: false,
                            },
                        )
                    })
                    .collect(),
                fra_remaining: g.fra_required.len(),
                relevant_trackers: Vec::new(),
            })
            .collect();
        RoundCore {
            me: plan.me,
            n: topo.graph().node_count(),
            f: topo.f(),
            started: false,
            fired: false,
            mset: MessageSet::new(),
            paths_by_init_value: HashMap::new(),
            threads,
            trackers: Vec::new(),
            tracker_index: HashMap::new(),
            waiters: HashMap::new(),
        }
    }

    /// Whether the node has begun this round (own value recorded).
    #[must_use]
    pub fn started(&self) -> bool {
        self.started
    }

    /// Whether Filter-and-Average already ran (the `nextround` flag).
    #[must_use]
    pub fn fired(&self) -> bool {
        self.fired
    }

    /// The accumulated message history `M_v` for this round.
    #[must_use]
    pub fn message_set(&self) -> &MessageSet {
        &self.mset
    }

    /// Begins the round with the node's current state value: records
    /// `(x, ⟨me⟩)` (the trivial path required by fullness).
    pub fn start(&mut self, value: f64, topo: &Topology, plan: &NodePlan) -> Vec<RoundAction> {
        debug_assert!(!self.started, "round started twice");
        self.started = true;
        let mut actions = Vec::new();
        self.ingest(topo.index().trivial(self.me), value, topo, plan, &mut actions);
        self.check_progress(topo, plan, &mut actions);
        actions
    }

    /// Records a validated flood arrival. `stored` is the wire path
    /// extended with `me`. Returns `(fresh, actions)`; relays happen only
    /// when `fresh` (RedundantFlood's "first message with path p").
    pub fn add_flood(
        &mut self,
        stored: PathId,
        value: f64,
        topo: &Topology,
        plan: &NodePlan,
    ) -> (bool, Vec<RoundAction>) {
        if self.mset.contains_path(stored) {
            return (false, Vec::new());
        }
        let mut actions = Vec::new();
        self.ingest(stored, value, topo, plan, &mut actions);
        self.check_progress(topo, plan, &mut actions);
        (true, actions)
    }

    fn ingest(
        &mut self,
        stored: PathId,
        value: f64,
        topo: &Topology,
        plan: &NodePlan,
        actions: &mut Vec<RoundAction>,
    ) {
        let index = topo.index();
        let node_set = index.node_set(stored);
        let init = index.init(stored);
        let bits = value.to_bits();
        let inserted = self.mset.insert(stored, value);
        debug_assert!(inserted, "caller checked freshness");

        if !self.fired {
            // Feed Completeness obligations (Algorithm 2, incremental).
            self.paths_by_init_value.entry((init, bits)).or_default().push(node_set);
            if let Some(waiting) = self.waiters.get(&(init, bits)) {
                let waiting = waiting.clone();
                let paths = self.paths_by_init_value[&(init, bits)].clone();
                for (t_idx, o_idx) in waiting {
                    let tracker = &mut self.trackers[t_idx];
                    let ob = &mut tracker.obligations[o_idx];
                    debug_assert_eq!((ob.q, ob.xq_bits), (init, bits), "waiter key mismatch");
                    if ob.satisfied {
                        continue;
                    }
                    let allowed =
                        NodeSet::universe(self.n) - ob.component - NodeSet::singleton(self.me);
                    if !has_cover(&paths, self.f, allowed) {
                        ob.satisfied = true;
                        tracker.pending -= 1;
                    }
                }
            }
        }

        // Maximal-Consistency tracking — continues after `fired` (other
        // nodes depend on our COMPLETE witnesses). Incremental: one
        // disjointness test and one `value_by_init` hash-map probe per
        // thread per arrival.
        for thread in &mut self.threads {
            if thread.mc_fired {
                continue;
            }
            let gp = &plan.guesses[thread.plan_idx];
            if !node_set.is_disjoint(gp.guess) {
                continue;
            }
            thread.flood_remaining -= 1;
            if thread.consistent {
                match thread.value_by_init.entry(init) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(bits);
                    }
                    std::collections::hash_map::Entry::Occupied(e) => {
                        if *e.get() != bits {
                            thread.consistent = false;
                        }
                    }
                }
            }
            if thread.consistent && thread.flood_remaining == 0 {
                thread.mc_fired = true;
                let payload = Arc::new(CompletePayload::from_message_set(
                    &self.mset.exclusion(gp.guess, index),
                ));
                actions.push(RoundAction::FloodComplete { guess: gp.guess, payload });
            }
        }
    }

    /// Records a FIFO-received `COMPLETE` (including the node's own, via
    /// the trivial path).
    #[allow(clippy::too_many_arguments)]
    pub fn add_fifo_delivery(
        &mut self,
        initiator: NodeId,
        delivery_path: PathId,
        suspects: NodeSet,
        payload: &Arc<CompletePayload>,
        fingerprint: u64,
        topo: &Topology,
        plan: &NodePlan,
    ) -> Vec<RoundAction> {
        let mut actions = Vec::new();
        if self.fired {
            return actions;
        }
        let tracker_idx = self.obtain_tracker(suspects, payload, fingerprint, topo);
        let path_nodes = topo.index().node_set(delivery_path);

        for thread in &mut self.threads {
            let gp = &plan.guesses[thread.plan_idx];
            if !path_nodes.is_subset(gp.reach) {
                continue;
            }
            // Verify-relevance (Algorithm 1 line 24).
            if !thread.relevant_trackers.contains(&tracker_idx) {
                thread.relevant_trackers.push(tracker_idx);
            }
            // FIFO-Receive-All progress (line 12) — only for this guess.
            if suspects == gp.guess {
                if let Some(progress) = thread.fra.get_mut(&initiator) {
                    if !progress.done && progress.seen.insert((delivery_path, fingerprint)) {
                        let count = progress.counts.entry(fingerprint).or_insert(0);
                        *count += 1;
                        if *count == progress.required {
                            progress.done = true;
                            thread.fra_remaining -= 1;
                        }
                    }
                }
            }
        }
        self.check_progress(topo, plan, &mut actions);
        actions
    }

    fn obtain_tracker(
        &mut self,
        suspects: NodeSet,
        payload: &Arc<CompletePayload>,
        fingerprint: u64,
        topo: &Topology,
    ) -> usize {
        if let Some(&idx) = self.tracker_index.get(&(suspects, fingerprint)) {
            return idx;
        }
        let consistent = payload.is_consistent(topo.index());
        let mut tracker = CompletenessTracker {
            consistent,
            impossible: false,
            pending: 0,
            obligations: Vec::new(),
        };
        let idx = self.trackers.len();
        if consistent {
            for &(component, q) in topo.completeness_obligations(suspects) {
                let Some(xq) = payload.value_of(q, topo.index()) else {
                    tracker.impossible = true;
                    continue;
                };
                let xq_bits = xq.to_bits();
                let allowed = NodeSet::universe(self.n) - component - NodeSet::singleton(self.me);
                let already = self
                    .paths_by_init_value
                    .get(&(q, xq_bits))
                    .is_some_and(|paths| !has_cover(paths, self.f, allowed));
                let o_idx = tracker.obligations.len();
                tracker.obligations.push(Obligation { component, q, xq_bits, satisfied: already });
                if !already {
                    tracker.pending += 1;
                    self.waiters.entry((q, xq_bits)).or_default().push((idx, o_idx));
                }
            }
        }
        self.trackers.push(tracker);
        self.tracker_index.insert((suspects, fingerprint), idx);
        idx
    }

    fn check_progress(&mut self, topo: &Topology, plan: &NodePlan, actions: &mut Vec<RoundAction>) {
        if self.fired || !self.started {
            return;
        }
        for thread in &self.threads {
            if thread.fra_remaining != 0 {
                continue;
            }
            if thread.relevant_trackers.iter().any(|&t| self.trackers[t].blocking()) {
                continue;
            }
            // Verify passed: Filter-and-Average, once per round.
            let outcome = filter_and_average(&self.mset, self.f, self.me, self.n, topo.index())
                .expect("own trivial path keeps the trimmed vector non-empty");
            self.fired = true;
            actions
                .push(RoundAction::Advance { guess: plan.guesses[thread.plan_idx].guess, outcome });
            return;
        }
    }
}
