//! Dimensional experiment plans: every [`Scenario`] knob as a sweep axis,
//! with seed-batch statistical reduction and `bench_trend`-compatible
//! JSON emission.
//!
//! An [`ExperimentPlan`] is a pure *grid description*: each dimension is a
//! typed [`Axis`] of labelled points — protocols (including per-protocol
//! knobs such as flood mode, path budget or W-MSR round counts, which ride
//! the protocol axis as distinct labelled entries), graphs, fault bounds,
//! fault placements, input assignments (with an optional a-priori range),
//! ε, [`SchedulerFamily`] schedule families, link-fault plans (chaos),
//! runtimes and round overrides.
//! Seeds form the *statistical* axis. [`ExperimentPlan::build`] expands the
//! cartesian product into a [`Sweep`] of labelled [`Cell`]s (reporting the
//! full cell count), and [`Sweep::run`] executes every cell across the
//! available cores via the workspace's scoped-thread
//! [`par_map`].
//!
//! Cell-level validation failures do **not** poison sibling cells: a cell
//! whose scenario is rejected (at build or at run) becomes a typed error
//! row, surfaced through [`SweepReport::failures`], while every other cell
//! runs normally.
//!
//! On top of the raw per-cell report, [`SweepReport::reduce`] groups cells
//! by *all axes except the seed* and emits distributional statistics
//! ([`Stats`]: mean/median/min/max/stddev) of spread, rounds-to-ε, message
//! counts and wall time per group. Both the raw and the reduced reports
//! render as the same `{"kernels": {<label>: {"mean_ns": …}}}` JSON shape
//! the `bench_trend` CI gate consumes, so sweep statistics ride the
//! existing bench artifact pipeline unchanged (CI uploads the *reduced*
//! report).
//!
//! ```
//! use dbac_core::scenario::sweep::ExperimentPlan;
//! use dbac_core::scenario::ByzantineWitness;
//! use dbac_graph::generators;
//!
//! let sweep = ExperimentPlan::new()
//!     .protocol("bw", ByzantineWitness::default())
//!     .graph("K4", generators::clique(4))
//!     .epsilons([1.0, 0.5])   // ε axis
//!     .seeds([1, 2])          // statistical axis
//!     .build()
//!     .expect("plan expands");
//! assert_eq!(sweep.cell_count(), 4);
//! let stats = sweep.run().reduce();
//! assert_eq!(stats.cells.len(), 2); // grouped by all axes except seed
//! assert!(stats.cells.iter().all(|c| c.converged == 2));
//! ```

use super::{FaultKind, LinkFaultPlan, Outcome, Protocol, Runtime, Scenario, SchedulerSpec};
use crate::error::RunError;
use dbac_graph::par::par_map;
use dbac_graph::{Digraph, NodeId};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Closure-backed axis value types
// ---------------------------------------------------------------------------

/// Places faults for one cell, given the graph and the fault bound.
/// Closure-backed, so placements may capture state (a node list, a value
/// range, a per-graph table).
pub type PlaceFaults = Arc<dyn Fn(&Digraph, usize) -> Vec<(NodeId, FaultKind)> + Send + Sync>;

/// Produces one input per node for a cell's graph. Closure-backed; see
/// [`InputSpec`] for the labelled axis entry that carries it.
pub type GenInputs = Arc<dyn Fn(&Digraph) -> Vec<f64> + Send + Sync>;

/// Produces the a-priori input range for a cell's graph (the optional half
/// of an [`InputSpec`]).
pub type GenRange = Arc<dyn Fn(&Digraph) -> (f64, f64) + Send + Sync>;

/// Produces one cell's [`LinkFaultPlan`] from the graph and the cell's
/// seed (`None`: clean links). Closure-backed, so a point can target
/// graph-dependent edges (e.g. every in-edge of the last node) and derive
/// the plan seed from the statistical axis.
pub type GenLinkFaults = Arc<dyn Fn(&Digraph, u64) -> Option<LinkFaultPlan> + Send + Sync>;

/// Derives an extra label tag from a graph-axis point (`None`: leave the
/// label alone). Closure-backed; installed via
/// [`ExperimentPlan::graph_tagger`], with
/// [`ExperimentPlan::certify_graphs`] as the canonical instance.
pub type GraphTag = Arc<dyn Fn(&Digraph) -> Option<String> + Send + Sync>;

/// One labelled input assignment: a generator producing one input per node,
/// plus an optional a-priori range closure (defaults to the honest-input
/// hull, exactly as [`ScenarioBuilder::range`](super::ScenarioBuilder::range)).
#[derive(Clone)]
pub struct InputSpec {
    gen: GenInputs,
    range: Option<GenRange>,
}

impl InputSpec {
    /// Inputs from an arbitrary per-graph generator closure.
    #[must_use]
    pub fn from_fn(gen: impl Fn(&Digraph) -> Vec<f64> + Send + Sync + 'static) -> Self {
        InputSpec { gen: Arc::new(gen), range: None }
    }

    /// The indexed assignment `v ↦ v` (the sweep default).
    #[must_use]
    pub fn indexed() -> Self {
        InputSpec::from_fn(|g| (0..g.node_count()).map(|i| i as f64).collect())
    }

    /// A fixed input vector (the graph axis must match its length).
    #[must_use]
    pub fn fixed(values: Vec<f64>) -> Self {
        InputSpec::from_fn(move |_| values.clone())
    }

    /// Declares a constant a-priori input range for every cell.
    #[must_use]
    pub fn with_range(self, lo: f64, hi: f64) -> Self {
        self.with_range_fn(move |_| (lo, hi))
    }

    /// Declares a per-graph a-priori input range (e.g. covering a node that
    /// is honest until it crashes).
    #[must_use]
    pub fn with_range_fn(
        mut self,
        range: impl Fn(&Digraph) -> (f64, f64) + Send + Sync + 'static,
    ) -> Self {
        self.range = Some(Arc::new(range));
        self
    }

    /// The generated inputs for `graph`.
    #[must_use]
    pub fn values(&self, graph: &Digraph) -> Vec<f64> {
        (self.gen)(graph)
    }

    /// The declared a-priori range for `graph`, if any.
    #[must_use]
    pub fn range(&self, graph: &Digraph) -> Option<(f64, f64)> {
        self.range.as_ref().map(|f| f(graph))
    }
}

impl std::fmt::Debug for InputSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InputSpec").field("has_range", &self.range.is_some()).finish()
    }
}

/// A family of message-delivery schedules, one [`SchedulerSpec`] per seed —
/// the scheduler axis entry. Every cell of a plan draws its concrete
/// schedule from its family at its seed, so cross-protocol comparisons stay
/// controlled while the seed batch samples the family.
#[derive(Clone)]
pub struct SchedulerFamily(Arc<dyn Fn(u64) -> SchedulerSpec + Send + Sync>);

impl SchedulerFamily {
    /// A family from an arbitrary seed → spec closure.
    #[must_use]
    pub fn from_fn(f: impl Fn(u64) -> SchedulerSpec + Send + Sync + 'static) -> Self {
        SchedulerFamily(Arc::new(f))
    }

    /// Constant per-message delay (seed-independent).
    #[must_use]
    pub fn fixed(delay: u64) -> Self {
        SchedulerFamily::from_fn(move |_| SchedulerSpec::Fixed(delay))
    }

    /// Seeded uniform-random delays in `[min, max]` (the plan default is
    /// `random(1, 20)`, the workspace's `.seed()` convention).
    #[must_use]
    pub fn random(min: u64, max: u64) -> Self {
        SchedulerFamily::from_fn(move |seed| SchedulerSpec::Random { seed, min, max })
    }

    /// The historical `[1, 15]` schedule of the pre-scenario entry points
    /// (see [`SchedulerSpec::legacy_random`]).
    #[must_use]
    pub fn legacy_random() -> Self {
        SchedulerFamily::from_fn(SchedulerSpec::legacy_random)
    }

    /// Layers adversarial per-edge delay overrides over this family.
    #[must_use]
    pub fn edge_delays(self, overrides: Vec<(NodeId, NodeId, u64)>) -> Self {
        SchedulerFamily::from_fn(move |seed| SchedulerSpec::EdgeDelays {
            base: Box::new((self.0)(seed)),
            overrides: overrides.clone(),
        })
    }

    /// The concrete schedule this family assigns to `seed`.
    #[must_use]
    pub fn spec(&self, seed: u64) -> SchedulerSpec {
        (self.0)(seed)
    }
}

impl std::fmt::Debug for SchedulerFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchedulerFamily").finish()
    }
}

// ---------------------------------------------------------------------------
// Axis
// ---------------------------------------------------------------------------

/// One typed dimension of an [`ExperimentPlan`]: labelled points, expanded
/// by cartesian product at [`ExperimentPlan::build`]. An axis left empty
/// collapses to the dimension's single neutral default point.
#[derive(Clone, Debug)]
pub struct Axis<T> {
    points: Vec<(String, T)>,
}

impl<T> Default for Axis<T> {
    fn default() -> Self {
        Axis::new()
    }
}

impl<T> Axis<T> {
    /// An empty axis.
    #[must_use]
    pub fn new() -> Self {
        Axis { points: Vec::new() }
    }

    /// Appends one labelled point.
    #[must_use]
    pub fn point(mut self, label: impl Into<String>, value: T) -> Self {
        self.points.push((label.into(), value));
        self
    }

    /// Builds an axis from labelled points (e.g. a graph catalog).
    #[must_use]
    pub fn from_points<L: Into<String>>(points: impl IntoIterator<Item = (L, T)>) -> Self {
        Axis { points: points.into_iter().map(|(l, v)| (l.into(), v)).collect() }
    }

    /// The labelled points, in insertion order.
    #[must_use]
    pub fn points(&self) -> &[(String, T)] {
        &self.points
    }

    /// Number of points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if no point was added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The points, or `default` when the axis was left empty — what
    /// [`ExperimentPlan::build`] expands.
    fn or_default(&self, default: (String, T)) -> Vec<(String, T)>
    where
        T: Clone,
    {
        if self.points.is_empty() {
            vec![default]
        } else {
            self.points.clone()
        }
    }
}

// ---------------------------------------------------------------------------
// ExperimentPlan
// ---------------------------------------------------------------------------

/// A fully-dimensional experiment description: the cartesian product of
/// labelled axes over every [`Scenario`] knob, with seeds as the
/// statistical axis. See the [module docs](self) for the model.
///
/// Dimensions left empty default to a single neutral point: fault bound 1,
/// no faults, indexed inputs `v ↦ v`, ε = 0.5, the seeded `random(1, 20)`
/// schedule family, clean links, the Sim runtime, the derived round count,
/// seed 0.
pub struct ExperimentPlan {
    protocols: Axis<Arc<dyn Protocol>>,
    graphs: Axis<Arc<Digraph>>,
    graph_tag: Option<GraphTag>,
    fault_bounds: Vec<usize>,
    placements: Axis<PlaceFaults>,
    inputs: Axis<InputSpec>,
    epsilons: Vec<f64>,
    schedulers: Axis<SchedulerFamily>,
    link_faults: Axis<GenLinkFaults>,
    runtimes: Axis<Runtime>,
    rounds: Vec<u32>,
    seeds: Vec<u64>,
    max_events: u64,
}

impl Default for ExperimentPlan {
    fn default() -> Self {
        ExperimentPlan::new()
    }
}

impl std::fmt::Debug for ExperimentPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExperimentPlan")
            .field("protocols", &self.protocols.len())
            .field("graphs", &self.graphs.len())
            .field("fault_bounds", &self.fault_bounds)
            .field("placements", &self.placements.len())
            .field("inputs", &self.inputs.len())
            .field("epsilons", &self.epsilons)
            .field("schedulers", &self.schedulers.len())
            .field("link_faults", &self.link_faults.len())
            .field("runtimes", &self.runtimes.len())
            .field("rounds", &self.rounds)
            .field("seeds", &self.seeds)
            .finish()
    }
}

impl ExperimentPlan {
    /// An empty plan (see the type docs for per-dimension defaults).
    #[must_use]
    pub fn new() -> Self {
        ExperimentPlan {
            protocols: Axis::new(),
            graphs: Axis::new(),
            graph_tag: None,
            fault_bounds: Vec::new(),
            placements: Axis::new(),
            inputs: Axis::new(),
            epsilons: Vec::new(),
            schedulers: Axis::new(),
            link_faults: Axis::new(),
            runtimes: Axis::new(),
            rounds: Vec::new(),
            seeds: Vec::new(),
            max_events: 100_000_000,
        }
    }

    /// Adds a protocol axis point. Per-protocol knobs (flood mode, path
    /// budget, W-MSR rounds) become axis points by adding distinctly
    /// configured, distinctly labelled instances.
    #[must_use]
    pub fn protocol(mut self, label: impl Into<String>, protocol: impl Protocol + 'static) -> Self {
        self.protocols = self.protocols.point(label, Arc::new(protocol));
        self
    }

    /// Adds a shared-handle protocol axis point.
    #[must_use]
    pub fn protocol_arc(mut self, label: impl Into<String>, protocol: Arc<dyn Protocol>) -> Self {
        self.protocols = self.protocols.point(label, protocol);
        self
    }

    /// Replaces the whole protocol axis.
    #[must_use]
    pub fn protocols_axis(mut self, axis: Axis<Arc<dyn Protocol>>) -> Self {
        self.protocols = axis;
        self
    }

    /// Adds a graph axis point.
    #[must_use]
    pub fn graph(mut self, label: impl Into<String>, graph: Digraph) -> Self {
        self.graphs = self.graphs.point(label, Arc::new(graph));
        self
    }

    /// Replaces the whole graph axis (e.g. from a named catalog).
    #[must_use]
    pub fn graphs_axis(mut self, axis: Axis<Digraph>) -> Self {
        self.graphs = Axis::from_points(axis.points.into_iter().map(|(l, g)| (l, Arc::new(g))));
        self
    }

    /// Installs a graph-axis labelling hook: at [`ExperimentPlan::build`]
    /// time, each graph point whose hook returns `Some(tag)` has its label
    /// rewritten to `label[tag]`, so every expanded cell — and every
    /// reduced row downstream — carries the tag in its `graph` coordinate.
    /// The hook runs once per graph point, not once per cell.
    #[must_use]
    pub fn graph_tagger(
        mut self,
        tag: impl Fn(&Digraph) -> Option<String> + Send + Sync + 'static,
    ) -> Self {
        self.graph_tag = Some(Arc::new(tag) as GraphTag);
        self
    }

    /// The canonical [`ExperimentPlan::graph_tagger`]: tags every graph
    /// point with its `(r, s)`-robustness certification status, so reduced
    /// rows read `graph[cert=circulant-prefix]` or `graph[cert=UNCERTIFIED]`
    /// — certified and unproven topologies can no longer be confused in
    /// sweep output. Polynomial per graph (the exact checker is never run).
    #[must_use]
    pub fn certify_graphs(self, r: usize, s: usize) -> Self {
        self.graph_tagger(move |g| {
            let status = dbac_conditions::robustness::certification(g, r, s);
            Some(format!("cert={}", status.rule_label()))
        })
    }

    /// Adds a fault-bound axis point (labelled `f<n>`; default `[1]`).
    #[must_use]
    pub fn fault_bound(mut self, f: usize) -> Self {
        self.fault_bounds.push(f);
        self
    }

    /// Adds a fault-placement axis point: a closure (it may capture state)
    /// placing faults given the graph and the fault bound.
    #[must_use]
    pub fn placement(
        mut self,
        label: impl Into<String>,
        placer: impl Fn(&Digraph, usize) -> Vec<(NodeId, FaultKind)> + Send + Sync + 'static,
    ) -> Self {
        self.placements = self.placements.point(label, Arc::new(placer) as PlaceFaults);
        self
    }

    /// Adds a fixed fault assignment as a placement axis point.
    #[must_use]
    pub fn faults(mut self, label: impl Into<String>, faults: Vec<(NodeId, FaultKind)>) -> Self {
        self.placements = self
            .placements
            .point(label, Arc::new(move |_: &Digraph, _: usize| faults.clone()) as PlaceFaults);
        self
    }

    /// Adds an input-assignment axis point.
    #[must_use]
    pub fn inputs(mut self, label: impl Into<String>, spec: InputSpec) -> Self {
        self.inputs = self.inputs.point(label, spec);
        self
    }

    /// Adds an ε axis point (labelled `eps<ε>`; default `[0.5]`).
    #[must_use]
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilons.push(epsilon);
        self
    }

    /// Adds several ε axis points.
    #[must_use]
    pub fn epsilons(mut self, epsilons: impl IntoIterator<Item = f64>) -> Self {
        self.epsilons.extend(epsilons);
        self
    }

    /// Adds a scheduler-family axis point (default: `random(1, 20)`).
    #[must_use]
    pub fn scheduler(mut self, label: impl Into<String>, family: SchedulerFamily) -> Self {
        self.schedulers = self.schedulers.point(label, family);
        self
    }

    /// Adds a link-fault axis point: a closure producing the cell's
    /// [`LinkFaultPlan`] from the graph and the cell's seed (`None`:
    /// clean links — the default when the axis is left empty).
    #[must_use]
    pub fn link_faults(
        mut self,
        label: impl Into<String>,
        gen: impl Fn(&Digraph, u64) -> Option<LinkFaultPlan> + Send + Sync + 'static,
    ) -> Self {
        self.link_faults = self.link_faults.point(label, Arc::new(gen) as GenLinkFaults);
        self
    }

    /// Adds a runtime axis point, labelled with [`Runtime::name`]
    /// (default: the Sim runtime). For several points of the same kind —
    /// e.g. a timeout sweep over threaded runtimes — use
    /// [`ExperimentPlan::runtime_labelled`], since auto-labels must stay
    /// unique within the axis.
    #[must_use]
    pub fn runtime(mut self, runtime: Runtime) -> Self {
        self.runtimes = self.runtimes.point(runtime.name(), runtime);
        self
    }

    /// Adds a runtime axis point under a caller-chosen label (several
    /// differently-configured runtimes of the same kind need distinct
    /// labels).
    #[must_use]
    pub fn runtime_labelled(mut self, label: impl Into<String>, runtime: Runtime) -> Self {
        self.runtimes = self.runtimes.point(label, runtime);
        self
    }

    /// Adds a round-override axis point (labelled `r<n>`; default: the
    /// protocol's derived round count).
    #[must_use]
    pub fn rounds(mut self, rounds: u32) -> Self {
        self.rounds.push(rounds);
        self
    }

    /// Adds a seed to the statistical axis (labelled `s<seed>`; default
    /// `[0]`). [`SweepReport::reduce`] aggregates over exactly this axis.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seeds.push(seed);
        self
    }

    /// Adds several seeds to the statistical axis.
    #[must_use]
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds.extend(seeds);
        self
    }

    /// Caps the simulator event budget for every cell (a budget, not an
    /// axis).
    #[must_use]
    pub fn max_events(mut self, max_events: u64) -> Self {
        self.max_events = max_events;
        self
    }

    /// Expands the cartesian product into a [`Sweep`] of labelled cells.
    ///
    /// Scenario-level validation failures do **not** fail the build: the
    /// offending cell carries its typed [`RunError`] and becomes an error
    /// row when run, leaving sibling cells intact.
    ///
    /// # Errors
    ///
    /// A plan without at least one protocol and one graph (there is no
    /// neutral default for either), or one whose labels collide — a
    /// duplicate point label within an axis (duplicate values, for the
    /// numeric axes), or two expanded cells sharing a full label — since
    /// colliding cells would silently merge in the reducer and in the JSON
    /// kernel keys.
    pub fn build(self) -> Result<Sweep, String> {
        if self.protocols.is_empty() {
            return Err("experiment plan needs at least one protocol".into());
        }
        if self.graphs.is_empty() {
            return Err("experiment plan needs at least one graph".into());
        }
        check_unique("protocol", self.protocols.points().iter().map(|(l, _)| l.clone()))?;
        check_unique("graph", self.graphs.points().iter().map(|(l, _)| l.clone()))?;
        check_unique("fault-bound", self.fault_bounds.iter().map(|f| format!("f{f}")))?;
        check_unique("placement", self.placements.points().iter().map(|(l, _)| l.clone()))?;
        check_unique("inputs", self.inputs.points().iter().map(|(l, _)| l.clone()))?;
        check_unique("epsilon", self.epsilons.iter().map(|e| format!("eps{e}")))?;
        check_unique("scheduler", self.schedulers.points().iter().map(|(l, _)| l.clone()))?;
        check_unique("link-faults", self.link_faults.points().iter().map(|(l, _)| l.clone()))?;
        check_unique("runtime", self.runtimes.points().iter().map(|(l, _)| l.clone()))?;
        check_unique("rounds", self.rounds.iter().map(|r| format!("r{r}")))?;
        check_unique("seed", self.seeds.iter().map(|s| format!("s{s}")))?;
        let fault_bounds = if self.fault_bounds.is_empty() { vec![1] } else { self.fault_bounds };
        let placements = self.placements.or_default((
            "none".into(),
            Arc::new(|_: &Digraph, _: usize| Vec::new()) as PlaceFaults,
        ));
        let inputs = self.inputs.or_default((String::new(), InputSpec::indexed()));
        // The ε fragment appears in labels only when the caller populated
        // the axis. Label policy: the historical Grid dimensions keep
        // their fragments even when defaulted (f, placement "none",
        // seed — so labels stay `proto/graph/f1/none/s0`-shaped), while
        // the dimensions new in the plan API (inputs, ε, scheduler,
        // runtime, rounds) contribute a fragment only when populated.
        let eps_explicit = !self.epsilons.is_empty();
        let epsilons = if self.epsilons.is_empty() { vec![0.5] } else { self.epsilons };
        let schedulers =
            self.schedulers.or_default((String::new(), SchedulerFamily::random(1, 20)));
        let link_faults = self
            .link_faults
            .or_default((String::new(), Arc::new(|_: &Digraph, _: u64| None) as GenLinkFaults));
        let runtimes = self.runtimes.or_default((String::new(), Runtime::Sim));
        let rounds: Vec<Option<u32>> = if self.rounds.is_empty() {
            vec![None]
        } else {
            self.rounds.into_iter().map(Some).collect()
        };
        let seeds = if self.seeds.is_empty() { vec![0] } else { self.seeds };

        // Apply the graph-axis labelling hook once per point (labels were
        // checked unique above; a tag only appends, per-graph, so tagged
        // labels stay unique).
        let graph_points: Vec<(String, Arc<Digraph>)> = self
            .graphs
            .points()
            .iter()
            .map(|(label, graph)| {
                let label = match self.graph_tag.as_ref().and_then(|tag| tag(graph)) {
                    Some(tag) => format!("{label}[{tag}]"),
                    None => label.clone(),
                };
                (label, Arc::clone(graph))
            })
            .collect();

        let mut cells = Vec::new();
        for (proto_label, protocol) in self.protocols.points() {
            for (graph_label, graph) in &graph_points {
                for &f in &fault_bounds {
                    for (place_label, placer) in &placements {
                        for (input_label, input) in &inputs {
                            for &epsilon in &epsilons {
                                for (sched_label, family) in &schedulers {
                                    for (links_label, links) in &link_faults {
                                        for &(ref runtime_label, runtime) in &runtimes {
                                            for &round in &rounds {
                                                for &seed in &seeds {
                                                    let coords: Arc<[(&'static str, String)]> =
                                                        Arc::from(vec![
                                                            ("protocol", proto_label.clone()),
                                                            ("graph", graph_label.clone()),
                                                            ("f", format!("f{f}")),
                                                            ("placement", place_label.clone()),
                                                            ("inputs", input_label.clone()),
                                                            (
                                                                "epsilon",
                                                                if eps_explicit {
                                                                    format!("eps{epsilon}")
                                                                } else {
                                                                    String::new()
                                                                },
                                                            ),
                                                            ("scheduler", sched_label.clone()),
                                                            ("links", links_label.clone()),
                                                            ("runtime", runtime_label.clone()),
                                                            (
                                                                "rounds",
                                                                round.map_or(String::new(), |r| {
                                                                    format!("r{r}")
                                                                }),
                                                            ),
                                                            ("seed", format!("s{seed}")),
                                                        ]);
                                                    let group = join_fragments(
                                                        coords.iter().take(coords.len() - 1),
                                                    );
                                                    let label = join_fragments(coords.iter());
                                                    let scenario =
                                                        Scenario::builder(Arc::clone(graph), f)
                                                            .inputs(input.values(graph))
                                                            .epsilon(epsilon)
                                                            .range_opt(input.range(graph))
                                                            .faults(placer(graph, f))
                                                            .scheduler(family.spec(seed))
                                                            .link_faults_opt(links(graph, seed))
                                                            .runtime(runtime)
                                                            .rounds_opt(round)
                                                            .max_events(self.max_events)
                                                            .protocol_arc(Arc::clone(protocol))
                                                            .build();
                                                    cells.push(Cell {
                                                        label,
                                                        group,
                                                        seed,
                                                        coords,
                                                        scenario,
                                                    });
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        // Per-axis uniqueness leaves one corner open: empty fragments are
        // dropped from labels, so points of *different* axes can still
        // compose into one string. Guard the full product.
        let mut labels = std::collections::HashSet::with_capacity(cells.len());
        for cell in &cells {
            if !labels.insert(cell.label.as_str()) {
                return Err(format!(
                    "two cells share the label '{}' (empty fragments collapsed axes together); \
                     give the colliding axis points distinct non-empty labels",
                    cell.label
                ));
            }
        }
        Ok(Sweep { cells })
    }
}

/// Rejects duplicate labels within one axis: colliding cells would merge
/// silently in the reducer and the JSON kernel keys.
fn check_unique(axis: &str, labels: impl Iterator<Item = String>) -> Result<(), String> {
    let mut seen = std::collections::HashSet::new();
    for label in labels {
        if !seen.insert(label.clone()) {
            return Err(format!("duplicate {axis} axis label '{label}'"));
        }
    }
    Ok(())
}

/// Looks up one named axis fragment in a shared coordinate slice (the one
/// body behind [`Cell::coord`], [`CellRow::coord`] and
/// [`ReducedCell::coord`]).
fn coord_of<'a>(coords: &'a [(&'static str, String)], axis: &str) -> Option<&'a str> {
    coords.iter().find(|(a, _)| *a == axis).map(|(_, l)| l.as_str())
}

fn join_fragments<'a>(coords: impl Iterator<Item = &'a (&'static str, String)>) -> String {
    let mut out = String::new();
    for (_, fragment) in coords {
        if fragment.is_empty() {
            continue;
        }
        if !out.is_empty() {
            out.push('/');
        }
        out.push_str(fragment);
    }
    out
}

// ---------------------------------------------------------------------------
// Sweep + cells
// ---------------------------------------------------------------------------

/// One expanded grid cell: a labelled scenario, or the typed validation
/// error that rejected it (kept so siblings still run).
#[derive(Debug)]
pub struct Cell {
    label: String,
    group: String,
    seed: u64,
    coords: Arc<[(&'static str, String)]>,
    scenario: Result<Scenario, RunError>,
}

impl Cell {
    /// The full cell label: every non-empty axis fragment joined with `/`,
    /// e.g. `bw/K4/f1/liar/eps0.5/s7`. The JSON kernel key of the raw
    /// report.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The label minus the seed fragment — the reduction group key.
    #[must_use]
    pub fn group(&self) -> &str {
        &self.group
    }

    /// The cell's seed (the statistical-axis coordinate).
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The label fragment of one named axis (`"protocol"`, `"graph"`,
    /// `"f"`, `"placement"`, `"inputs"`, `"epsilon"`, `"scheduler"`,
    /// `"links"`, `"runtime"`, `"rounds"`, `"seed"`); empty for defaulted
    /// dimensions.
    #[must_use]
    pub fn coord(&self, axis: &str) -> Option<&str> {
        coord_of(&self.coords, axis)
    }

    /// The validated scenario, if the cell built.
    #[must_use]
    pub fn scenario(&self) -> Option<&Scenario> {
        self.scenario.as_ref().ok()
    }

    /// The build-time rejection, if the cell did not build.
    #[must_use]
    pub fn error(&self) -> Option<&RunError> {
        self.scenario.as_ref().err()
    }
}

/// An expanded plan: the full labelled cell product, ready to run.
#[derive(Debug)]
pub struct Sweep {
    cells: Vec<Cell>,
}

impl Sweep {
    /// The expanded cells, in canonical axis order (seed innermost).
    #[must_use]
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// The full product size reported by the expansion.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Executes every runnable cell across the available cores and
    /// collects the per-cell report (rows stay in cell order). Cells that
    /// failed to build, or whose run is rejected by the protocol, become
    /// typed error rows.
    #[must_use]
    pub fn run(&self) -> SweepReport {
        let rows = par_map(&self.cells, |_, cell| {
            let start = Instant::now();
            let summary = match &cell.scenario {
                Ok(scenario) => scenario.run().map(|out| CellSummary::digest(&out)),
                Err(e) => Err(e.clone()),
            };
            CellRow {
                label: cell.label.clone(),
                group: cell.group.clone(),
                seed: cell.seed,
                coords: Arc::clone(&cell.coords),
                wall_ns: start.elapsed().as_nanos() as f64,
                summary,
            }
        });
        SweepReport { rows }
    }
}

// ---------------------------------------------------------------------------
// Per-cell results
// ---------------------------------------------------------------------------

/// Protocol-agnostic digest of one cell's [`Outcome`].
#[derive(Clone, Debug, PartialEq)]
pub struct CellSummary {
    /// All honest nodes decided within ε.
    pub converged: bool,
    /// Decided outputs stayed in the honest input hull.
    pub valid: bool,
    /// Every honest node decided.
    pub all_decided: bool,
    /// Max − min over decided honest outputs.
    pub spread: f64,
    /// The per-round honest spread trajectory (Lemma 15's observable).
    pub spread_by_round: Vec<f64>,
    /// Earliest round whose spread fell below ε (`None`: never).
    pub rounds_to_epsilon: Option<u32>,
    /// The run's agreement parameter ε.
    pub epsilon: f64,
    /// Messages handed to the delivery queue (0 for synchronous and
    /// threaded runs).
    pub messages_sent: u64,
    /// Messages actually delivered by the simulator.
    pub messages_delivered: u64,
    /// Messages destroyed by the cell's link-fault plan (drops plus
    /// corruptions; 0 for clean links).
    pub messages_dropped: u64,
    /// Protocol-counted honest messages, where available.
    pub honest_messages: Option<u64>,
    /// Configured round count.
    pub rounds: u32,
}

impl CellSummary {
    /// Digests an outcome into the sweep's protocol-agnostic row.
    #[must_use]
    pub fn digest(out: &Outcome) -> Self {
        let spread_by_round = out.spread_by_round();
        let rounds_to_epsilon =
            spread_by_round.iter().position(|&s| s < out.epsilon).map(|r| r as u32);
        CellSummary {
            converged: out.converged(),
            valid: out.valid(),
            all_decided: out.all_decided(),
            spread: out.spread(),
            spread_by_round,
            rounds_to_epsilon,
            epsilon: out.epsilon,
            messages_sent: out.sim_stats.messages_sent(),
            messages_delivered: out.sim_stats.messages_delivered(),
            messages_dropped: out.sim_stats.messages_dropped() + out.sim_stats.messages_corrupted(),
            honest_messages: out.honest_messages,
            rounds: out.rounds,
        }
    }

    /// The cell's message metric: protocol-counted honest messages where
    /// the protocol tracks them, simulator sends otherwise.
    #[must_use]
    pub fn messages(&self) -> u64 {
        self.honest_messages.unwrap_or(self.messages_sent)
    }
}

/// One executed (or rejected) cell.
#[derive(Clone, Debug)]
pub struct CellRow {
    /// The cell's full label.
    pub label: String,
    /// The reduction group key (label minus the seed fragment).
    pub group: String,
    /// The cell's seed.
    pub seed: u64,
    /// Axis fragments, shared with the cell (see [`Cell::coord`]).
    pub coords: Arc<[(&'static str, String)]>,
    /// Wall-clock nanoseconds for the whole run (≈0 for rejected cells).
    pub wall_ns: f64,
    /// The outcome digest, or the typed error that rejected the cell.
    pub summary: Result<CellSummary, RunError>,
}

impl CellRow {
    /// The label fragment of one named axis (see [`Cell::coord`]).
    #[must_use]
    pub fn coord(&self, axis: &str) -> Option<&str> {
        coord_of(&self.coords, axis)
    }
}

/// The raw per-cell results of a sweep, renderable as `bench_trend` JSON
/// and reducible into seed-batch statistics.
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// Rows in cell order.
    pub rows: Vec<CellRow>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A finite numeric JSON literal (exponent form; non-finite values render
/// as 0 so the report always parses).
fn jnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v:e}")
    } else {
        "0".into()
    }
}

impl SweepReport {
    /// Rows whose cell was rejected or whose run failed.
    #[must_use]
    pub fn failures(&self) -> Vec<&CellRow> {
        self.rows.iter().filter(|r| r.summary.is_err()).collect()
    }

    /// The row with the given full label.
    #[must_use]
    pub fn get(&self, label: &str) -> Option<&CellRow> {
        self.rows.iter().find(|r| r.label == label)
    }

    /// Groups rows by all axes except the seed and reduces each group's
    /// seed batch into distributional statistics.
    #[must_use]
    pub fn reduce(&self) -> ReducedReport {
        let mut order: Vec<&str> = Vec::new();
        let mut groups: HashMap<&str, Vec<&CellRow>> = HashMap::new();
        for row in &self.rows {
            let entry = groups.entry(row.group.as_str()).or_default();
            if entry.is_empty() {
                order.push(row.group.as_str());
            }
            entry.push(row);
        }
        let cells = order
            .into_iter()
            .map(|group| {
                let rows = &groups[group];
                let oks: Vec<&CellSummary> =
                    rows.iter().filter_map(|r| r.summary.as_ref().ok()).collect();
                ReducedCell {
                    group: group.to_string(),
                    coords: Arc::clone(&rows[0].coords),
                    seeds: rows.iter().map(|r| r.seed).collect(),
                    runs: rows.len(),
                    errors: rows.len() - oks.len(),
                    converged: oks.iter().filter(|s| s.converged).count(),
                    valid: oks.iter().filter(|s| s.valid).count(),
                    all_decided: oks.iter().filter(|s| s.all_decided).count(),
                    spread: Stats::of(oks.iter().map(|s| s.spread)),
                    rounds_to_epsilon: Stats::of(
                        oks.iter().filter_map(|s| s.rounds_to_epsilon).map(f64::from),
                    ),
                    messages: Stats::of(oks.iter().map(|s| s.messages() as f64)),
                    dropped: Stats::of(oks.iter().map(|s| s.messages_dropped as f64)),
                    wall_ns: Stats::of(
                        rows.iter().filter(|r| r.summary.is_ok()).map(|r| r.wall_ns),
                    ),
                }
            })
            .collect();
        ReducedReport { cells }
    }

    /// Renders the raw report in the `bench_trend` schema: each cell
    /// becomes a kernel keyed by its label, `mean_ns` carrying the wall
    /// time, the digest flattened into extra numeric fields (which the
    /// gate's parser accepts and ignores), and rejected cells flagged with
    /// `"error": 1`.
    #[must_use]
    pub fn to_bench_json(&self) -> String {
        let mut out = String::from("{\n  \"kernels\": {\n");
        for (i, row) in self.rows.iter().enumerate() {
            let sep = if i + 1 == self.rows.len() { "" } else { "," };
            match &row.summary {
                Ok(s) => {
                    let flag = |b: bool| u8::from(b);
                    out.push_str(&format!(
                        "    \"{}\": {{ \"mean_ns\": {:.1}, \"converged\": {}, \"valid\": {}, \
                         \"decided\": {}, \"spread\": {}, \"messages\": {}, \"dropped\": {}, \
                         \"rounds\": {} }}{sep}\n",
                        json_escape(&row.label),
                        row.wall_ns,
                        flag(s.converged),
                        flag(s.valid),
                        flag(s.all_decided),
                        jnum(s.spread),
                        s.messages(),
                        s.messages_dropped,
                        s.rounds,
                    ));
                }
                Err(_) => {
                    out.push_str(&format!(
                        "    \"{}\": {{ \"mean_ns\": {:.1}, \"error\": 1 }}{sep}\n",
                        json_escape(&row.label),
                        row.wall_ns,
                    ));
                }
            }
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Writes [`SweepReport::to_bench_json`] to `path`.
    ///
    /// # Errors
    ///
    /// I/O failures creating or writing the file.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_bench_json())
    }
}

// ---------------------------------------------------------------------------
// Reducer
// ---------------------------------------------------------------------------

/// Distributional statistics of one metric over a seed batch. An empty
/// batch reduces to all-zero statistics (with `n = 0`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Stats {
    /// Number of finite samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median.
    pub median: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Population standard deviation.
    pub stddev: f64,
}

impl Stats {
    /// Reduces finite samples into summary statistics.
    #[must_use]
    pub fn of(values: impl IntoIterator<Item = f64>) -> Stats {
        let mut vals: Vec<f64> = values.into_iter().filter(|v| v.is_finite()).collect();
        if vals.is_empty() {
            return Stats { n: 0, mean: 0.0, median: 0.0, min: 0.0, max: 0.0, stddev: 0.0 };
        }
        vals.sort_by(f64::total_cmp);
        let n = vals.len();
        let mean = vals.iter().sum::<f64>() / n as f64;
        let median = if n % 2 == 1 { vals[n / 2] } else { (vals[n / 2 - 1] + vals[n / 2]) / 2.0 };
        let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        Stats { n, mean, median, min: vals[0], max: vals[n - 1], stddev: var.sqrt() }
    }
}

/// One reduced group: every cell sharing all axis coordinates except the
/// seed, aggregated into counts and [`Stats`].
#[derive(Clone, Debug)]
pub struct ReducedCell {
    /// The group key (the cell label minus the seed fragment).
    pub group: String,
    /// Axis fragments of the group (the seed entry is the first member's).
    pub coords: Arc<[(&'static str, String)]>,
    /// The seeds aggregated into this group, in cell order.
    pub seeds: Vec<u64>,
    /// Total cells in the group.
    pub runs: usize,
    /// Cells rejected or failed (error rows).
    pub errors: usize,
    /// Successful cells that converged.
    pub converged: usize,
    /// Successful cells whose outputs stayed in the honest hull.
    pub valid: usize,
    /// Successful cells where every honest node decided.
    pub all_decided: usize,
    /// Final-spread statistics over successful cells.
    pub spread: Stats,
    /// Rounds-to-ε statistics over cells that reached ε.
    pub rounds_to_epsilon: Stats,
    /// Message-count statistics (see [`CellSummary::messages`]).
    pub messages: Stats,
    /// Link-fault destruction statistics (drops plus corruptions).
    pub dropped: Stats,
    /// Wall-time statistics (nanoseconds) over successful cells.
    pub wall_ns: Stats,
}

impl ReducedCell {
    /// The label fragment of one named axis (see [`Cell::coord`]).
    #[must_use]
    pub fn coord(&self, axis: &str) -> Option<&str> {
        coord_of(&self.coords, axis)
    }
}

/// The seed-aggregated results of a sweep — what CI uploads as the
/// `sweep.json` artifact.
#[derive(Clone, Debug)]
pub struct ReducedReport {
    /// Reduced groups, in first-seen cell order.
    pub cells: Vec<ReducedCell>,
}

impl ReducedReport {
    /// The reduced group with the given key.
    #[must_use]
    pub fn get(&self, group: &str) -> Option<&ReducedCell> {
        self.cells.iter().find(|c| c.group == group)
    }

    /// Renders the reduced report in the `bench_trend` schema: each group
    /// becomes a kernel keyed by the group label, `mean_ns` carrying the
    /// mean wall time over the seed batch, with the distributional fields
    /// flattened to extra numbers the gate's parser accepts and ignores.
    #[must_use]
    pub fn to_bench_json(&self) -> String {
        let mut out = String::from("{\n  \"kernels\": {\n");
        for (i, c) in self.cells.iter().enumerate() {
            let sep = if i + 1 == self.cells.len() { "" } else { "," };
            out.push_str(&format!(
                "    \"{}\": {{ \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}, \
                 \"stddev_ns\": {:.1}, \"runs\": {}, \"errors\": {}, \"converged\": {}, \
                 \"valid\": {}, \"decided\": {}, \"spread_mean\": {}, \"spread_median\": {}, \
                 \"spread_max\": {}, \"rounds_to_eps_mean\": {}, \"messages_mean\": {:.1}, \
                 \"messages_max\": {:.1}, \"dropped_mean\": {:.1} }}{sep}\n",
                json_escape(&c.group),
                c.wall_ns.mean,
                c.wall_ns.min,
                c.wall_ns.max,
                c.wall_ns.stddev,
                c.runs,
                c.errors,
                c.converged,
                c.valid,
                c.all_decided,
                jnum(c.spread.mean),
                jnum(c.spread.median),
                jnum(c.spread.max),
                jnum(c.rounds_to_epsilon.mean),
                c.messages.mean,
                c.messages.max,
                c.dropped.mean,
            ));
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Writes [`ReducedReport::to_bench_json`] to `path`.
    ///
    /// # Errors
    ///
    /// I/O failures creating or writing the file.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_bench_json())
    }
}

#[cfg(test)]
mod tests {
    use super::super::{ByzantineWitness, CrashTwoReach};
    use super::*;
    use dbac_graph::generators;

    #[test]
    fn plan_expands_the_full_product() {
        let sweep = ExperimentPlan::new()
            .protocol("bw", ByzantineWitness::default())
            .protocol("crash", CrashTwoReach::default())
            .graph("k3", generators::clique(3))
            .graph("k4", generators::clique(4))
            .fault_bound(0)
            .epsilons([1.0, 0.5])
            .scheduler("fix", SchedulerFamily::fixed(1))
            .scheduler("rnd", SchedulerFamily::random(1, 9))
            .rounds(3)
            .rounds(4)
            .seeds([1, 2, 3])
            .build()
            .unwrap();
        // 2 protocols × 2 graphs × 1 bound × 2 ε × 2 schedulers × 2 rounds
        // × 3 seeds.
        assert_eq!(sweep.cell_count(), 2 * 2 * 2 * 2 * 2 * 3);
        let first = &sweep.cells()[0];
        assert_eq!(first.label(), "bw/k3/f0/none/eps1/fix/r3/s1");
        assert_eq!(first.group(), "bw/k3/f0/none/eps1/fix/r3");
        assert_eq!(first.seed(), 1);
        assert_eq!(first.coord("scheduler"), Some("fix"));
        assert_eq!(first.coord("runtime"), Some(""));
        let scn = first.scenario().expect("valid cell");
        assert_eq!(scn.epsilon(), 1.0);
        assert_eq!(scn.rounds_override(), Some(3));
        assert_eq!(scn.scheduler(), &SchedulerSpec::Fixed(1));
    }

    #[test]
    fn defaulted_plan_axes_keep_grid_shaped_labels() {
        let sweep = ExperimentPlan::new()
            .protocol("bw", ByzantineWitness::default())
            .graph("k4", generators::clique(4))
            .build()
            .unwrap();
        assert_eq!(sweep.cell_count(), 1);
        assert_eq!(sweep.cells()[0].label(), "bw/k4/f1/none/s0");
        let scn = sweep.cells()[0].scenario().unwrap();
        assert_eq!(scn.epsilon(), 0.5);
        assert_eq!(scn.scheduler(), &SchedulerSpec::Random { seed: 0, min: 1, max: 20 });
    }

    #[test]
    fn certify_graphs_tags_the_graph_coordinate() {
        let sweep = ExperimentPlan::new()
            .protocol("bw", ByzantineWitness::default())
            .graph("k5", generators::clique(5))
            .graph("ring", generators::directed_cycle(5))
            .certify_graphs(2, 2)
            .build()
            .unwrap();
        assert_eq!(sweep.cell_count(), 2);
        assert_eq!(sweep.cells()[0].coord("graph"), Some("k5[cert=min-in-degree]"));
        assert_eq!(sweep.cells()[0].label(), "bw/k5[cert=min-in-degree]/f1/none/s0");
        // A sparse ring is honestly unprovable at (2, 2): the marker is
        // explicit, not silent.
        assert_eq!(sweep.cells()[1].coord("graph"), Some("ring[cert=UNCERTIFIED]"));
    }

    #[test]
    fn sweep_runs_reduces_and_reports_bench_json() {
        let report = ExperimentPlan::new()
            .protocol("bw", ByzantineWitness::default())
            .graph("k4", generators::clique(4))
            .fault_bound(1)
            .placement("liar", |g, _| {
                vec![(NodeId::new(g.node_count() - 1), FaultKind::ConstantLiar { value: 1e6 })]
            })
            .seeds([7, 8])
            .build()
            .unwrap()
            .run();
        assert_eq!(report.rows.len(), 2);
        assert!(report.failures().is_empty());
        let row = report.get("bw/k4/f1/liar/s7").expect("labelled row");
        let summary = row.summary.as_ref().unwrap();
        assert!(summary.converged && summary.valid, "{summary:?}");
        assert!(summary.rounds_to_epsilon.is_some());
        assert!(row.wall_ns > 0.0);

        let raw = report.to_bench_json();
        assert!(raw.contains("\"bw/k4/f1/liar/s7\""));
        assert!(raw.contains("\"bw/k4/f1/liar/s8\""));
        assert!(raw.contains("\"converged\": 1"));

        let reduced = report.reduce();
        assert_eq!(reduced.cells.len(), 1);
        let cell = reduced.get("bw/k4/f1/liar").expect("group key drops the seed");
        assert_eq!(cell.seeds, vec![7, 8]);
        assert_eq!((cell.runs, cell.errors), (2, 0));
        assert_eq!((cell.converged, cell.valid, cell.all_decided), (2, 2, 2));
        assert_eq!(cell.wall_ns.n, 2);
        assert!(cell.wall_ns.mean > 0.0);
        assert!(cell.spread.max < 0.5);
        let json = reduced.to_bench_json();
        assert!(json.contains("\"kernels\""));
        assert!(json.contains("\"bw/k4/f1/liar\""));
        assert!(json.contains("\"mean_ns\""));
        assert!(json.contains("\"stddev_ns\""));
        assert!(json.contains("\"runs\": 2"));
    }

    #[test]
    fn invalid_cells_become_error_rows_without_poisoning_siblings() {
        // A placement naming a node outside K3 rejects that cell at build;
        // the K4 sibling still runs to convergence.
        let sweep = ExperimentPlan::new()
            .protocol("bw", ByzantineWitness::default())
            .graph("k3", generators::clique(3))
            .graph("k4", generators::clique(4))
            .faults("oob", vec![(NodeId::new(3), FaultKind::Crash)])
            .build()
            .unwrap();
        assert_eq!(sweep.cell_count(), 2);
        let bad = &sweep.cells()[0];
        assert_eq!(bad.error(), Some(&RunError::FaultOutsideGraph { node: 3, nodes: 3 }));
        assert!(bad.scenario().is_none());

        let report = sweep.run();
        let failures = report.failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].label, "bw/k3/f1/oob/s0");
        assert_eq!(
            failures[0].summary.as_ref().unwrap_err(),
            &RunError::FaultOutsideGraph { node: 3, nodes: 3 }
        );
        let ok = report.get("bw/k4/f1/oob/s0").unwrap();
        assert!(ok.summary.as_ref().unwrap().converged);

        // The raw JSON flags the error row; the reduced report counts it.
        assert!(report.to_bench_json().contains("\"error\": 1"));
        let reduced = report.reduce();
        assert_eq!(reduced.cells.len(), 2);
        let bad = reduced.get("bw/k3/f1/oob").unwrap();
        assert_eq!((bad.runs, bad.errors), (1, 1));
        assert_eq!(bad.wall_ns.n, 0);
    }

    #[test]
    fn input_spec_generates_values_and_ranges() {
        let g = generators::clique(4);
        assert_eq!(InputSpec::indexed().values(&g), vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(InputSpec::indexed().range(&g), None);
        let fixed = InputSpec::fixed(vec![1.0, 2.0, 3.0, 4.0]).with_range(0.0, 9.0);
        assert_eq!(fixed.values(&g), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(fixed.range(&g), Some((0.0, 9.0)));
        let per_graph = InputSpec::indexed().with_range_fn(|g| (0.0, (g.node_count() - 1) as f64));
        assert_eq!(per_graph.range(&g), Some((0.0, 3.0)));
    }

    #[test]
    fn scheduler_families_produce_the_expected_specs() {
        assert_eq!(SchedulerFamily::fixed(3).spec(9), SchedulerSpec::Fixed(3));
        assert_eq!(
            SchedulerFamily::random(1, 15).spec(5),
            SchedulerSpec::Random { seed: 5, min: 1, max: 15 }
        );
        assert_eq!(SchedulerFamily::legacy_random().spec(4), SchedulerSpec::legacy_random(4));
        let delayed =
            SchedulerFamily::fixed(1).edge_delays(vec![(NodeId::new(0), NodeId::new(1), 1_000)]);
        assert_eq!(
            delayed.spec(0),
            SchedulerSpec::EdgeDelays {
                base: Box::new(SchedulerSpec::Fixed(1)),
                overrides: vec![(NodeId::new(0), NodeId::new(1), 1_000)],
            }
        );
    }

    #[test]
    fn placements_may_capture_state() {
        // The closure captures the fault list — impossible with the old
        // bare-`fn` FaultPlacer alias.
        let planted = vec![(NodeId::new(2), FaultKind::Crash)];
        let sweep = ExperimentPlan::new()
            .protocol("bw", ByzantineWitness::default())
            .graph("k4", generators::clique(4))
            .placement("captured", move |_, _| planted.clone())
            .build()
            .unwrap();
        let scn = sweep.cells()[0].scenario().unwrap();
        assert_eq!(scn.faults(), &[(NodeId::new(2), FaultKind::Crash)]);
    }

    #[test]
    fn bare_fns_still_feed_the_plan_through_the_closure_types() {
        // Bare `fn` items coerce into the closure-backed axis types, so
        // callers of the retired `FaultPlacer`/`InputsFn` aliases migrate
        // by deleting the type ascription.
        fn placer(_: &Digraph, _: usize) -> Vec<(NodeId, FaultKind)> {
            Vec::new()
        }
        fn inputs(g: &Digraph) -> Vec<f64> {
            vec![0.0; g.node_count()]
        }
        let sweep = ExperimentPlan::new()
            .protocol("bw", ByzantineWitness::default())
            .graph("k3", generators::clique(3))
            .placement("none2", placer)
            .inputs("zero", InputSpec::from_fn(inputs))
            .build()
            .unwrap();
        assert_eq!(sweep.cells()[0].scenario().unwrap().inputs(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn link_fault_axis_labels_cells_and_counts_drops() {
        let report = ExperimentPlan::new()
            .protocol("bw", ByzantineWitness::default())
            .graph("k4", generators::clique(4))
            .fault_bound(0)
            .link_faults("clean", |_, _| None)
            .link_faults("lossy", |g: &Digraph, seed| {
                let mut plan = LinkFaultPlan::new(seed);
                for (from, to) in g.edges() {
                    plan = plan.fault(from, to, super::super::LinkFault::Drop { prob: 0.2 });
                }
                Some(plan)
            })
            .seeds([3, 4])
            .build()
            .unwrap()
            .run();
        assert_eq!(report.rows.len(), 4);
        assert!(report.failures().is_empty(), "{:?}", report.failures());

        let clean = report.get("bw/k4/f0/none/clean/s3").expect("clean cell labelled");
        assert_eq!(clean.coord("links"), Some("clean"));
        assert_eq!(clean.summary.as_ref().unwrap().messages_dropped, 0);

        let lossy = report.get("bw/k4/f0/none/lossy/s3").expect("lossy cell labelled");
        assert!(lossy.summary.as_ref().unwrap().messages_dropped > 0);

        // The drop counts ride both JSON schemas and the reducer.
        assert!(report.to_bench_json().contains("\"dropped\":"));
        let reduced = report.reduce();
        let group = reduced.get("bw/k4/f0/none/lossy").expect("group drops the seed");
        assert_eq!(group.dropped.n, 2);
        assert!(group.dropped.mean > 0.0);
        assert_eq!(reduced.get("bw/k4/f0/none/clean").unwrap().dropped.max, 0.0);
        assert!(reduced.to_bench_json().contains("\"dropped_mean\":"));
    }

    #[test]
    fn stats_of_known_batch() {
        let s = Stats::of([4.0, 1.0, 3.0, 2.0]);
        assert_eq!(s.n, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.median, 2.5);
        assert_eq!((s.min, s.max), (1.0, 4.0));
        assert!((s.stddev - (1.25f64).sqrt()).abs() < 1e-12);
        let odd = Stats::of([3.0, 1.0, 2.0]);
        assert_eq!(odd.median, 2.0);
        let empty = Stats::of([f64::NAN, f64::INFINITY]);
        assert_eq!(empty.n, 0);
        assert_eq!(empty.mean, 0.0);
    }

    #[test]
    fn json_escaping_and_literals() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(jnum(f64::NAN), "0");
        assert_eq!(jnum(0.5), "5e-1");
    }

    #[test]
    fn build_rejects_colliding_labels() {
        // Two distinct configurations under one protocol label would merge
        // silently in the reducer — build must refuse.
        let err = ExperimentPlan::new()
            .protocol("bw", ByzantineWitness::default())
            .protocol("bw", ByzantineWitness::default())
            .graph("k3", generators::clique(3))
            .build()
            .unwrap_err();
        assert!(err.contains("duplicate protocol axis label 'bw'"), "{err}");

        // Numeric axes collide by formatted value.
        let err = ExperimentPlan::new()
            .protocol("bw", ByzantineWitness::default())
            .graph("k3", generators::clique(3))
            .epsilons([0.5, 0.5])
            .build()
            .unwrap_err();
        assert!(err.contains("duplicate epsilon axis label 'eps0.5'"), "{err}");

        let err = ExperimentPlan::new()
            .protocol("bw", ByzantineWitness::default())
            .graph("k3", generators::clique(3))
            .seeds([1, 1])
            .build()
            .unwrap_err();
        assert!(err.contains("duplicate seed axis label 's1'"), "{err}");

        // Cross-axis: empty fragments can compose two different points
        // into one full label — caught by the product-level guard.
        let err = ExperimentPlan::new()
            .protocol("bw", ByzantineWitness::default())
            .graph("k3", generators::clique(3))
            .placement("x", |_, _| Vec::new())
            .placement("", |_, _| Vec::new())
            .inputs("", InputSpec::indexed())
            .inputs("x", InputSpec::indexed())
            .build()
            .unwrap_err();
        assert!(err.contains("share the label"), "{err}");
    }

    #[test]
    fn runtime_timeout_sweeps_need_explicit_labels() {
        use std::time::Duration;
        // Auto-labels collide for two runtimes of the same kind…
        let err = ExperimentPlan::new()
            .protocol("bw", ByzantineWitness::default())
            .graph("k3", generators::clique(3))
            .runtime(Runtime::threaded(Duration::from_secs(30)))
            .runtime(Runtime::threaded(Duration::from_secs(60)))
            .build()
            .unwrap_err();
        assert!(err.contains("duplicate runtime axis label 'threaded'"), "{err}");

        // …while caller labels make the timeout sweep expressible.
        let sweep = ExperimentPlan::new()
            .protocol("bw", ByzantineWitness::default())
            .graph("k3", generators::clique(3))
            .runtime_labelled("thr30", Runtime::threaded(Duration::from_secs(30)))
            .runtime_labelled("thr60", Runtime::threaded(Duration::from_secs(60)))
            .build()
            .unwrap();
        assert_eq!(sweep.cell_count(), 2);
        assert_eq!(sweep.cells()[0].coord("runtime"), Some("thr30"));
        assert_eq!(
            sweep.cells()[1].scenario().unwrap().runtime(),
            Runtime::threaded(Duration::from_secs(60))
        );
    }

    #[test]
    fn cells_share_one_graph_allocation() {
        let sweep = ExperimentPlan::new()
            .protocol("bw", ByzantineWitness::default())
            .graph("k4", generators::clique(4))
            .seeds([1, 2, 3])
            .build()
            .unwrap();
        let graphs: Vec<*const Digraph> =
            sweep.cells().iter().map(|c| c.scenario().unwrap().graph() as *const _).collect();
        assert!(graphs.windows(2).all(|w| w[0] == w[1]), "expansion must not clone the graph");
    }

    #[test]
    fn build_requires_protocols_and_graphs() {
        assert!(ExperimentPlan::new().build().unwrap_err().contains("protocol"));
        assert!(ExperimentPlan::new()
            .protocol("bw", ByzantineWitness::default())
            .build()
            .unwrap_err()
            .contains("graph"));
    }
}
