//! Cartesian scenario sweeps with parallel execution and
//! `bench_trend`-compatible JSON emission.
//!
//! A [`Grid`] describes a product of protocols × graphs × fault bounds ×
//! fault placements × seeds; [`Grid::build`] expands it into a [`Sweep`]
//! of labelled scenarios, and [`Sweep::run`] executes every point across
//! the available cores (via the workspace's scoped-thread
//! [`par_map`]). The resulting [`SweepReport`]
//! renders as the same `{"kernels": {<label>: {"mean_ns": …}}}` JSON shape
//! the `bench_trend` CI gate consumes, so sweep wall-times ride the
//! existing bench artifact pipeline unchanged.

use super::{FaultKind, Protocol, Runtime, Scenario, SchedulerSpec};
use dbac_graph::par::par_map;
use dbac_graph::{Digraph, NodeId};
use std::sync::Arc;
use std::time::Instant;

/// Places faults for one grid point, given the graph and the fault bound.
pub type FaultPlacer = fn(&Digraph, usize) -> Vec<(NodeId, FaultKind)>;

/// Produces one input per node for a grid point's graph.
pub type InputsFn = fn(&Digraph) -> Vec<f64>;

fn indexed_inputs(g: &Digraph) -> Vec<f64> {
    (0..g.node_count()).map(|i| i as f64).collect()
}

/// A cartesian grid of scenarios. Dimensions left empty default to a
/// single neutral entry (no faults, seed 0, fault bound taken per graph).
pub struct Grid {
    protocols: Vec<(String, Arc<dyn Protocol>)>,
    graphs: Vec<(String, Digraph)>,
    fault_bounds: Vec<usize>,
    placements: Vec<(String, FaultPlacer)>,
    seeds: Vec<u64>,
    epsilon: f64,
    inputs: InputsFn,
    runtime: Runtime,
    max_events: u64,
    delays: (u64, u64),
}

impl Default for Grid {
    fn default() -> Self {
        Grid::new()
    }
}

impl Grid {
    /// An empty grid with ε = 0.5, indexed inputs (`v ↦ v`), the Sim
    /// runtime and the default event budget.
    #[must_use]
    pub fn new() -> Self {
        Grid {
            protocols: Vec::new(),
            graphs: Vec::new(),
            fault_bounds: Vec::new(),
            placements: Vec::new(),
            seeds: Vec::new(),
            epsilon: 0.5,
            inputs: indexed_inputs,
            runtime: Runtime::Sim,
            max_events: 100_000_000,
            delays: (1, 20),
        }
    }

    /// Adds a protocol dimension entry.
    #[must_use]
    pub fn protocol(mut self, label: impl Into<String>, protocol: impl Protocol + 'static) -> Self {
        self.protocols.push((label.into(), Arc::new(protocol)));
        self
    }

    /// Adds a graph dimension entry.
    #[must_use]
    pub fn graph(mut self, label: impl Into<String>, graph: Digraph) -> Self {
        self.graphs.push((label.into(), graph));
        self
    }

    /// Adds a fault-bound dimension entry (default: `[1]`).
    #[must_use]
    pub fn fault_bound(mut self, f: usize) -> Self {
        self.fault_bounds.push(f);
        self
    }

    /// Adds a fault-placement dimension entry.
    #[must_use]
    pub fn placement(mut self, label: impl Into<String>, placer: FaultPlacer) -> Self {
        self.placements.push((label.into(), placer));
        self
    }

    /// Adds a seed dimension entry (each seeds a `[1, 20]` random
    /// schedule; default: `[0]`).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seeds.push(seed);
        self
    }

    /// Sets the agreement parameter for every point.
    #[must_use]
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the input generator for every point.
    #[must_use]
    pub fn inputs(mut self, inputs: InputsFn) -> Self {
        self.inputs = inputs;
        self
    }

    /// Sets the runtime for every point.
    #[must_use]
    pub fn runtime(mut self, runtime: Runtime) -> Self {
        self.runtime = runtime;
        self
    }

    /// Caps the simulator event budget for every point.
    #[must_use]
    pub fn max_events(mut self, max_events: u64) -> Self {
        self.max_events = max_events;
        self
    }

    /// Sets the random-schedule delay range `[min, max]` every seed draws
    /// from (default `[1, 20]`, the workspace's `.seed()` convention).
    /// Every grid point runs under the *same* schedule family — that
    /// uniformity is what makes cross-protocol comparisons controlled.
    #[must_use]
    pub fn delays(mut self, min: u64, max: u64) -> Self {
        self.delays = (min, max);
        self
    }

    /// Expands the cartesian product into a labelled [`Sweep`].
    ///
    /// # Errors
    ///
    /// An empty protocol or graph dimension, or the first
    /// scenario-validation failure labelled with its grid point (a grid
    /// that cannot build should fail loudly, not at run time).
    pub fn build(self) -> Result<Sweep, String> {
        if self.protocols.is_empty() {
            return Err("grid needs at least one protocol".into());
        }
        if self.graphs.is_empty() {
            return Err("grid needs at least one graph".into());
        }
        let fault_bounds = if self.fault_bounds.is_empty() { vec![1] } else { self.fault_bounds };
        let none: (String, FaultPlacer) = ("none".into(), |_, _| Vec::new());
        let placements = if self.placements.is_empty() { vec![none] } else { self.placements };
        let seeds = if self.seeds.is_empty() { vec![0] } else { self.seeds };
        let mut points = Vec::new();
        for (proto_label, protocol) in &self.protocols {
            for (graph_label, graph) in &self.graphs {
                for &f in &fault_bounds {
                    for (place_label, placer) in &placements {
                        for &seed in &seeds {
                            let label =
                                format!("{proto_label}/{graph_label}/f{f}/{place_label}/s{seed}");
                            let scenario = Scenario::builder(graph.clone(), f)
                                .inputs((self.inputs)(graph))
                                .epsilon(self.epsilon)
                                .faults(placer(graph, f))
                                .scheduler(SchedulerSpec::Random {
                                    seed,
                                    min: self.delays.0,
                                    max: self.delays.1,
                                })
                                .runtime(self.runtime)
                                .max_events(self.max_events)
                                .protocol_arc(Arc::clone(protocol))
                                .build()
                                .map_err(|e| format!("{label}: {e}"))?;
                            points.push(SweepPoint { label, scenario });
                        }
                    }
                }
            }
        }
        Ok(Sweep { points })
    }
}

/// One labelled scenario inside a sweep.
#[derive(Debug)]
pub struct SweepPoint {
    /// `protocol/graph/f<f>/placement/s<seed>` label (the JSON kernel key).
    pub label: String,
    /// The scenario to execute.
    pub scenario: Scenario,
}

/// A set of labelled scenarios executed together.
#[derive(Debug)]
pub struct Sweep {
    points: Vec<SweepPoint>,
}

impl Sweep {
    /// Builds a sweep from explicit points (the [`Grid`] shortcut covers
    /// the cartesian case).
    #[must_use]
    pub fn from_points(points: Vec<SweepPoint>) -> Self {
        Sweep { points }
    }

    /// The labelled points, in grid order.
    #[must_use]
    pub fn points(&self) -> &[SweepPoint] {
        &self.points
    }

    /// Executes every point across the available cores and collects the
    /// report (rows stay in grid order).
    #[must_use]
    pub fn run(&self) -> SweepReport {
        let rows = par_map(&self.points, |_, point| {
            let start = Instant::now();
            let outcome = point.scenario.run();
            let wall_ns = start.elapsed().as_nanos() as f64;
            let summary = outcome
                .map(|out| SweepSummary {
                    converged: out.converged(),
                    valid: out.valid(),
                    all_decided: out.all_decided(),
                    spread: out.spread(),
                    messages_sent: out.sim_stats.messages_sent,
                    honest_messages: out.honest_messages,
                    rounds: out.rounds,
                })
                .map_err(|e| e.to_string());
            SweepRow { label: point.label.clone(), wall_ns, summary }
        });
        SweepReport { rows }
    }
}

/// Protocol-agnostic digest of one scenario outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepSummary {
    /// All honest nodes decided within ε.
    pub converged: bool,
    /// Decided outputs stayed in the honest input hull.
    pub valid: bool,
    /// Every honest node decided.
    pub all_decided: bool,
    /// Max − min over decided honest outputs.
    pub spread: f64,
    /// Messages handed to the delivery queue (0 for synchronous and
    /// threaded runs).
    pub messages_sent: u64,
    /// Protocol-counted honest messages, where available.
    pub honest_messages: Option<u64>,
    /// Configured round count.
    pub rounds: u32,
}

/// One executed sweep point.
#[derive(Clone, Debug)]
pub struct SweepRow {
    /// The point's label.
    pub label: String,
    /// Wall-clock nanoseconds for the whole run.
    pub wall_ns: f64,
    /// The outcome digest, or the run error rendered as text.
    pub summary: Result<SweepSummary, String>,
}

/// The results of a sweep, renderable as `bench_trend` JSON.
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// Rows in grid order.
    pub rows: Vec<SweepRow>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl SweepReport {
    /// Rows whose scenario failed to run.
    #[must_use]
    pub fn failures(&self) -> Vec<&SweepRow> {
        self.rows.iter().filter(|r| r.summary.is_err()).collect()
    }

    /// Renders the report in the `bench_trend` schema: each point becomes
    /// a kernel keyed by its label, `mean_ns` carrying the wall time, and
    /// the outcome digest flattened into extra numeric fields (which the
    /// gate's parser accepts and ignores).
    #[must_use]
    pub fn to_bench_json(&self) -> String {
        let mut out = String::from("{\n  \"kernels\": {\n");
        for (i, row) in self.rows.iter().enumerate() {
            let sep = if i + 1 == self.rows.len() { "" } else { "," };
            match &row.summary {
                Ok(s) => {
                    let flag = |b: bool| if b { 1 } else { 0 };
                    out.push_str(&format!(
                        "    \"{}\": {{ \"mean_ns\": {:.1}, \"converged\": {}, \"valid\": {}, \
                         \"decided\": {}, \"spread\": {:e}, \"messages\": {}, \"rounds\": {} }}{sep}\n",
                        json_escape(&row.label),
                        row.wall_ns,
                        flag(s.converged),
                        flag(s.valid),
                        flag(s.all_decided),
                        s.spread,
                        s.honest_messages.unwrap_or(s.messages_sent),
                        s.rounds,
                    ));
                }
                Err(_) => {
                    out.push_str(&format!(
                        "    \"{}\": {{ \"mean_ns\": {:.1}, \"error\": 1 }}{sep}\n",
                        json_escape(&row.label),
                        row.wall_ns,
                    ));
                }
            }
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Writes [`SweepReport::to_bench_json`] to `path`.
    ///
    /// # Errors
    ///
    /// I/O failures creating or writing the file.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_bench_json())
    }
}

#[cfg(test)]
mod tests {
    use super::super::{ByzantineWitness, CrashTwoReach};
    use super::*;
    use dbac_graph::generators;

    fn liar_at_last(g: &Digraph, _f: usize) -> Vec<(NodeId, FaultKind)> {
        vec![(NodeId::new(g.node_count() - 1), FaultKind::ConstantLiar { value: 1e6 })]
    }

    #[test]
    fn grid_expands_the_cartesian_product() {
        let sweep = Grid::new()
            .protocol("bw", ByzantineWitness::default())
            .protocol("crash", CrashTwoReach::default())
            .graph("k3", generators::clique(3))
            .graph("k4", generators::clique(4))
            .fault_bound(0)
            .seed(1)
            .seed(2)
            .build()
            .unwrap();
        // 2 protocols × 2 graphs × 1 bound × 1 placement × 2 seeds.
        assert_eq!(sweep.points().len(), 8);
        assert_eq!(sweep.points()[0].label, "bw/k3/f0/none/s1");
    }

    #[test]
    fn sweep_runs_and_reports_bench_json() {
        let report = Grid::new()
            .protocol("bw", ByzantineWitness::default())
            .graph("k4", generators::clique(4))
            .fault_bound(1)
            .placement("liar", liar_at_last)
            .seed(7)
            .build()
            .unwrap()
            .run();
        assert_eq!(report.rows.len(), 1);
        assert!(report.failures().is_empty());
        let row = &report.rows[0];
        let summary = row.summary.as_ref().unwrap();
        assert!(summary.converged && summary.valid, "{summary:?}");
        assert!(row.wall_ns > 0.0);
        let json = report.to_bench_json();
        assert!(json.contains("\"kernels\""));
        assert!(json.contains("\"bw/k4/f1/liar/s7\""));
        assert!(json.contains("\"mean_ns\""));
        assert!(json.contains("\"converged\": 1"));
    }

    #[test]
    fn grid_rejects_invalid_points_at_build_time() {
        // A placement naming a node outside K3 must fail while building.
        let err = Grid::new()
            .protocol("bw", ByzantineWitness::default())
            .graph("k3", generators::clique(3))
            .placement("oob", |_, _| vec![(NodeId::new(64), FaultKind::Crash)])
            .build()
            .unwrap_err();
        assert!(err.contains("bw/k3/f1/oob/s0"), "{err}");
        assert!(err.contains("64"), "{err}");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
    }
}
