//! Per-graph precomputation shared by all nodes.
//!
//! The paper assumes every node knows the topology `G` (reach sets, source
//! components and redundant-path enumerations all require it). [`Topology`]
//! computes, once per graph:
//!
//! * the fault-set guesses `F ⊆ V`, `|F| ≤ f` (one BW thread each);
//! * the full path population — redundant paths in the paper's mode,
//!   simple paths in the ablation — interned into a [`PathIndex`], so the
//!   protocol stack speaks dense [`PathId`]s instead of owned paths;
//! * reach sets `reach_v(F)` for every guess;
//! * source components `S_{F1,F2}` for every silenced union `|·| ≤ 2f`;
//! * per guess `F_u`, the deduplicated Completeness obligations
//!   `(S_{F_u,F_w}, q)` of Algorithm 2.
//!
//! The enumeration and reach passes are embarrassingly parallel and run
//! across all cores ([`dbac_graph::par::par_map`]). Everything is immutable
//! after construction and shared via `Arc`.

use crate::config::FloodMode;
use dbac_conditions::reduced::source_component_of_silenced;
use dbac_graph::par::par_map;
use dbac_graph::paths::{reaching_to, redundant_paths_ending_at, simple_paths_ending_at};
use dbac_graph::subsets::SubsetsUpTo;
use dbac_graph::{Digraph, GraphError, NodeId, NodeSet, Path, PathBudget, PathId, PathIndex};
use std::collections::{HashMap, HashSet};

/// Immutable, shared protocol-relevant knowledge about one network.
#[derive(Debug)]
pub struct Topology {
    graph: Digraph,
    f: usize,
    flood_mode: FloodMode,
    /// The interned path population (the value-flood requirement pools).
    index: PathIndex,
    guesses: Vec<NodeSet>,
    /// Guess → per-node reach sets.
    reach: HashMap<NodeSet, Vec<NodeSet>>,
    /// Silenced set (size ≤ 2f) → source component.
    sources: HashMap<NodeSet, NodeSet>,
    /// Guess (the `F_u`) → deduplicated `(S_{F_u,F_w}, q)` pairs.
    obligations: HashMap<NodeSet, Vec<(NodeSet, NodeId)>>,
}

impl Topology {
    /// Precomputes everything for `graph` with fault bound `f`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::BudgetExceeded`] if the path enumeration
    /// exceeds `budget` — the algorithm is intrinsically exponential, and
    /// the budget keeps that explicit.
    pub fn new(
        graph: Digraph,
        f: usize,
        flood_mode: FloodMode,
        budget: PathBudget,
    ) -> Result<Self, GraphError> {
        let n = graph.node_count();
        let all = graph.vertex_set();
        let guesses: Vec<NodeSet> = SubsetsUpTo::new(all, f).collect();

        // Per-terminal path enumeration, fanned out across cores. The pool
        // is the fullness requirement population; under the paper's mode it
        // is closed under redundant extension, under the ablation under
        // simple extension — either way the PathIndex forwarding table is
        // exact for the active flood discipline.
        let nodes: Vec<NodeId> = graph.nodes().collect();
        let pools: Vec<Vec<Path>> = par_map(&nodes, |_, &v| match flood_mode {
            FloodMode::Redundant => redundant_paths_ending_at(&graph, v, NodeSet::EMPTY, budget),
            FloodMode::SimpleOnly => simple_paths_ending_at(&graph, v, NodeSet::EMPTY, budget),
        })
        .into_iter()
        .collect::<Result<_, _>>()?;
        let index = PathIndex::build(&graph, &pools);

        // Per-guess reach sets, also in parallel.
        let reach: HashMap<NodeSet, Vec<NodeSet>> = par_map(&guesses, |_, &guess| {
            let keep = guess.complement_in(n);
            let sub = graph.induced(keep);
            let per_node: Vec<NodeSet> =
                graph
                    .nodes()
                    .map(|v| {
                        if guess.contains(v) {
                            NodeSet::EMPTY
                        } else {
                            reaching_to(&sub, v) & keep
                        }
                    })
                    .collect();
            (guess, per_node)
        })
        .into_iter()
        .collect();

        let silenced_sets: Vec<NodeSet> = SubsetsUpTo::new(all, 2 * f).collect();
        let sources: HashMap<NodeSet, NodeSet> = par_map(&silenced_sets, |_, &silenced| {
            (silenced, source_component_of_silenced(&graph, silenced))
        })
        .into_iter()
        .collect();

        let mut obligations = HashMap::with_capacity(guesses.len());
        for &fu in &guesses {
            let mut pairs: Vec<(NodeSet, NodeId)> = Vec::new();
            let mut seen_components: HashSet<NodeSet> = HashSet::new();
            for &fw in &guesses {
                if fw == fu {
                    continue;
                }
                let s = sources[&(fu | fw)];
                if s.is_empty() || !seen_components.insert(s) {
                    continue;
                }
                for q in s.iter() {
                    pairs.push((s, q));
                }
            }
            obligations.insert(fu, pairs);
        }

        Ok(Topology { graph, f, flood_mode, index, guesses, reach, sources, obligations })
    }

    /// The network.
    #[must_use]
    pub fn graph(&self) -> &Digraph {
        &self.graph
    }

    /// The fault bound `f`.
    #[must_use]
    pub fn f(&self) -> usize {
        self.f
    }

    /// The value-flood path discipline.
    #[must_use]
    pub fn flood_mode(&self) -> FloodMode {
        self.flood_mode
    }

    /// The interned path population.
    #[must_use]
    pub fn index(&self) -> &PathIndex {
        &self.index
    }

    /// All fault-set guesses `|F| ≤ f`, in deterministic order.
    #[must_use]
    pub fn guesses(&self) -> &[NodeSet] {
        &self.guesses
    }

    /// The value-flood requirement pool ending at `v` (fullness is checked
    /// against the subset of these avoiding the guess).
    #[must_use]
    pub fn required_paths_to(&self, v: NodeId) -> &[PathId] {
        self.index.paths_ending_at(v)
    }

    /// All simple paths ending at `v`.
    #[must_use]
    pub fn simple_paths_to(&self, v: NodeId) -> &[PathId] {
        self.index.simple_paths_ending_at(v)
    }

    /// `reach_v(guess)` — precomputed for every guess.
    ///
    /// # Panics
    ///
    /// Panics if `guess` is not one of [`Topology::guesses`].
    #[must_use]
    pub fn reach_of(&self, v: NodeId, guess: NodeSet) -> NodeSet {
        self.reach.get(&guess).expect("guess was enumerated")[v.index()]
    }

    /// `S_{F1,F2}` — precomputed for every silenced union of size ≤ 2f.
    ///
    /// # Panics
    ///
    /// Panics if `|F1 ∪ F2| > 2f`.
    #[must_use]
    pub fn source_component(&self, f1: NodeSet, f2: NodeSet) -> NodeSet {
        *self.sources.get(&(f1 | f2)).expect("silenced union within 2f")
    }

    /// Algorithm 2's obligation list for suspect set `F_u`: the
    /// deduplicated `(S_{F_u,F_w}, q ∈ S)` pairs over all `F_w ≠ F_u`.
    ///
    /// # Panics
    ///
    /// Panics if `fu` is not one of [`Topology::guesses`].
    #[must_use]
    pub fn completeness_obligations(&self, fu: NodeSet) -> &[(NodeSet, NodeId)] {
        self.obligations.get(&fu).expect("fu is an enumerated guess")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbac_graph::generators;

    fn id(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn topo(g: Digraph, f: usize) -> Topology {
        crate::test_support::topo_of(g, f, FloodMode::Redundant)
    }

    #[test]
    fn guesses_enumerate_all_small_subsets() {
        let t = topo(generators::clique(4), 1);
        assert_eq!(t.guesses().len(), 5); // ∅ + 4 singletons
        assert_eq!(t.f(), 1);
    }

    #[test]
    fn required_paths_include_trivial_and_are_redundant() {
        let t = topo(generators::clique(4), 1);
        for v in t.graph().nodes() {
            let req = t.required_paths_to(v);
            assert!(req.contains(&t.index().trivial(v)));
            assert!(req.iter().all(|&p| t.index().ter(p) == v && t.index().path(p).is_redundant()));
        }
    }

    #[test]
    fn pools_match_direct_enumeration() {
        let t = topo(generators::two_cliques_bridged(3, &[(0, 0)], &[(2, 2)]), 1);
        for v in t.graph().nodes() {
            let direct =
                redundant_paths_ending_at(t.graph(), v, NodeSet::EMPTY, PathBudget::default())
                    .unwrap();
            let interned: std::collections::HashSet<&Path> =
                t.required_paths_to(v).iter().map(|&p| t.index().path(p)).collect();
            assert_eq!(interned.len(), t.required_paths_to(v).len(), "no duplicate ids");
            for p in &direct {
                assert!(interned.contains(p), "missing {p}");
            }
            assert_eq!(direct.len(), interned.len());
        }
    }

    #[test]
    fn simple_mode_uses_simple_pool() {
        let g = generators::clique(4);
        let t = Topology::new(g, 1, FloodMode::SimpleOnly, PathBudget::default()).unwrap();
        assert_eq!(t.flood_mode(), FloodMode::SimpleOnly);
        for v in t.graph().nodes() {
            assert_eq!(t.required_paths_to(v).len(), t.simple_paths_to(v).len());
            assert!(t.required_paths_to(v).iter().all(|&p| t.index().is_simple(p)));
        }
    }

    #[test]
    fn reach_matches_direct_computation() {
        let t = topo(generators::figure_1b_small(), 1);
        for &guess in t.guesses() {
            for v in t.graph().nodes() {
                assert_eq!(
                    t.reach_of(v, guess),
                    dbac_conditions::reach::reach_set(t.graph(), v, guess)
                );
            }
        }
    }

    #[test]
    fn source_components_match_direct_computation() {
        let t = topo(generators::clique(5), 1);
        let f1 = NodeSet::singleton(id(0));
        let f2 = NodeSet::singleton(id(2));
        assert_eq!(
            t.source_component(f1, f2),
            dbac_conditions::reduced::source_component(t.graph(), f1, f2)
        );
    }

    #[test]
    fn obligations_are_deduplicated_and_inside_components() {
        let t = topo(generators::clique(4), 1);
        for &fu in t.guesses() {
            let obs = t.completeness_obligations(fu);
            for &(s, q) in obs {
                assert!(s.contains(q));
                assert!(!s.is_empty());
            }
            // Dedup: no repeated (S, q) pair.
            let mut keys: Vec<(NodeSet, usize)> =
                obs.iter().map(|&(s, q)| (s, q.index())).collect();
            keys.sort_unstable();
            let before = keys.len();
            keys.dedup();
            assert_eq!(keys.len(), before);
        }
    }

    #[test]
    fn budget_propagates() {
        let err = Topology::new(generators::clique(6), 1, FloodMode::Redundant, PathBudget::new(5));
        assert!(matches!(err.unwrap_err(), GraphError::BudgetExceeded { .. }));
    }
}
