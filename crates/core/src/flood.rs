//! RedundantFlood (Appendix E): forwarding rules for value floods.
//!
//! A node that accepts `(x, p)` stores `(x, p‖v)` and forwards `(x, p‖v)`
//! to each out-neighbor `w` for which `p‖v‖w` is still a redundant path
//! (a simple path in the ablation mode). Admissibility is one lookup in
//! the [`PathIndex`](dbac_graph::PathIndex) forwarding table — the interned
//! population holds exactly the admissible paths of the active flood mode.
//! The helpers here are shared by honest nodes and by adversaries that
//! need to *look* honest while tampering.

use crate::message::{ProtocolMsg, Round};
use crate::precompute::Topology;
use dbac_graph::{NodeId, PathId};

/// The initial flood of a state value: `(x, ⟨me⟩)` to every out-neighbor
/// (Algorithm 4 line 1). The two-node extension is always admissible.
#[must_use]
pub fn initial_flood(
    topo: &Topology,
    me: NodeId,
    round: Round,
    value: f64,
) -> Vec<(NodeId, ProtocolMsg)> {
    let path = topo.index().trivial(me);
    topo.graph()
        .out_neighbors(me)
        .iter()
        .map(|w| (w, ProtocolMsg::Flood { round, value, path }))
        .collect()
}

/// Forwards for a freshly stored flood path (which ends at `me`): sends
/// `(value, stored)` to each `w` with `stored‖w` admissible under the
/// flood mode — i.e. present in the forwarding table.
#[must_use]
pub fn flood_forwards(
    topo: &Topology,
    me: NodeId,
    round: Round,
    value: f64,
    stored: PathId,
) -> Vec<(NodeId, ProtocolMsg)> {
    let index = topo.index();
    debug_assert_eq!(index.ter(stored), me);
    let mut out = Vec::new();
    for w in topo.graph().out_neighbors(me).iter() {
        if index.extend(stored, w).is_some() {
            out.push((w, ProtocolMsg::Flood { round, value, path: stored }));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FloodMode;
    use crate::test_support::{pid, topo_of};
    use dbac_graph::generators;

    fn id(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn topo(n: usize, mode: FloodMode) -> Topology {
        topo_of(generators::clique(n), 1, mode)
    }

    #[test]
    fn initial_flood_reaches_all_out_neighbors() {
        let t = topo(4, FloodMode::Redundant);
        let msgs = initial_flood(&t, id(0), 0, 1.5);
        assert_eq!(msgs.len(), 3);
        for (_, m) in &msgs {
            match m {
                ProtocolMsg::Flood { round, value, path } => {
                    assert_eq!((*round, *value), (0, 1.5));
                    assert_eq!(*path, t.index().trivial(id(0)));
                }
                ProtocolMsg::Complete { .. } => panic!("wrong message kind"),
            }
        }
    }

    #[test]
    fn forwards_keep_redundancy_invariant() {
        let t = topo(4, FloodMode::Redundant);
        // Stored path ⟨1,2,0⟩ at node 0: forwarding to 3 gives ⟨1,2,0,3⟩
        // (redundant); forwarding to 1 gives ⟨1,2,0,1⟩ (also redundant —
        // splits as ⟨1,2,0⟩‖⟨0,1⟩).
        let stored = pid(&t, &[1, 2, 0]);
        let fw = flood_forwards(&t, id(0), 2, 7.0, stored);
        let targets: Vec<usize> = fw.iter().map(|(w, _)| w.index()).collect();
        assert!(targets.contains(&3));
        assert!(targets.contains(&1));
        for (_, m) in &fw {
            if let ProtocolMsg::Flood { path, .. } = m {
                assert_eq!(*path, stored, "wire path ends at the sender");
            }
        }
    }

    #[test]
    fn forwards_stop_when_redundancy_would_break() {
        let t = topo(3, FloodMode::Redundant);
        // ⟨2,0,1,2,0⟩ is redundant (⟨2,0,1⟩‖⟨1,2,0⟩, both simple), but
        // extending by 1 gives ⟨2,0,1,2,0,1⟩ which has no simple split.
        let stored = pid(&t, &[2, 0, 1, 2, 0]);
        assert!(t.index().path(stored).is_redundant());
        let fw = flood_forwards(&t, id(0), 0, 1.0, stored);
        let targets: Vec<usize> = fw.iter().map(|(w, _)| w.index()).collect();
        assert!(!targets.contains(&1), "⟨2,0,1,2,0,1⟩ is not redundant");
    }

    #[test]
    fn simple_mode_blocks_cycles() {
        let t = topo(4, FloodMode::SimpleOnly);
        let stored = pid(&t, &[1, 2, 0]);
        let fw = flood_forwards(&t, id(0), 0, 1.0, stored);
        let targets: Vec<usize> = fw.iter().map(|(w, _)| w.index()).collect();
        assert_eq!(targets, vec![3], "only the cycle-free extension survives");
    }
}
