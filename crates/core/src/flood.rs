//! RedundantFlood (Appendix E): forwarding rules for value floods.
//!
//! A node that accepts `(x, p)` stores `(x, p‖v)` and forwards `(x, p‖v)`
//! to each out-neighbor `w` for which `p‖v‖w` is still a redundant path
//! (a simple path in the ablation mode). The helpers here are shared by
//! honest nodes and by adversaries that need to *look* honest while
//! tampering.

use crate::config::FloodMode;
use crate::message::{ProtocolMsg, Round};
use crate::precompute::Topology;
use dbac_graph::{NodeId, Path};

/// The initial flood of a state value: `(x, ⟨me⟩)` to every out-neighbor
/// (Algorithm 4 line 1). The two-node extension is always admissible.
#[must_use]
pub fn initial_flood(
    topo: &Topology,
    me: NodeId,
    round: Round,
    value: f64,
) -> Vec<(NodeId, ProtocolMsg)> {
    let path = Path::single(me);
    topo.graph()
        .out_neighbors(me)
        .iter()
        .map(|w| (w, ProtocolMsg::Flood { round, value, path: path.clone() }))
        .collect()
}

/// Forwards for a freshly stored flood path (which ends at `me`): sends
/// `(value, stored)` to each `w` with `stored‖w` admissible under the
/// flood mode.
#[must_use]
pub fn flood_forwards(
    topo: &Topology,
    me: NodeId,
    round: Round,
    value: f64,
    stored: &Path,
) -> Vec<(NodeId, ProtocolMsg)> {
    debug_assert_eq!(stored.ter(), me);
    let mut out = Vec::new();
    for w in topo.graph().out_neighbors(me).iter() {
        let Ok(extended) = stored.extended(w) else {
            continue;
        };
        let admissible = match topo.flood_mode() {
            FloodMode::Redundant => extended.is_redundant(),
            FloodMode::SimpleOnly => extended.is_simple(),
        };
        if admissible {
            out.push((w, ProtocolMsg::Flood { round, value, path: stored.clone() }));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbac_graph::{generators, PathBudget};

    fn id(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn topo(n: usize, mode: FloodMode) -> Topology {
        Topology::new(generators::clique(n), 1, mode, PathBudget::default()).unwrap()
    }

    #[test]
    fn initial_flood_reaches_all_out_neighbors() {
        let t = topo(4, FloodMode::Redundant);
        let msgs = initial_flood(&t, id(0), 0, 1.5);
        assert_eq!(msgs.len(), 3);
        for (_, m) in &msgs {
            match m {
                ProtocolMsg::Flood { round, value, path } => {
                    assert_eq!((*round, *value), (0, 1.5));
                    assert_eq!(*path, Path::single(id(0)));
                }
                ProtocolMsg::Complete { .. } => panic!("wrong message kind"),
            }
        }
    }

    #[test]
    fn forwards_keep_redundancy_invariant() {
        let t = topo(4, FloodMode::Redundant);
        // Stored path ⟨1,2,0⟩ at node 0: forwarding to 3 gives ⟨1,2,0,3⟩
        // (redundant); forwarding to 1 gives ⟨1,2,0,1⟩ (also redundant —
        // splits as ⟨1,2,0⟩‖⟨0,1⟩).
        let stored = Path::from_indices(&[1, 2, 0]).unwrap();
        let fw = flood_forwards(&t, id(0), 2, 7.0, &stored);
        let targets: Vec<usize> = fw.iter().map(|(w, _)| w.index()).collect();
        assert!(targets.contains(&3));
        assert!(targets.contains(&1));
        for (_, m) in &fw {
            if let ProtocolMsg::Flood { path, .. } = m {
                assert_eq!(path, &stored, "wire path ends at the sender");
            }
        }
    }

    #[test]
    fn forwards_stop_when_redundancy_would_break() {
        let t = topo(3, FloodMode::Redundant);
        // ⟨0,1,0,1… is not extensible past two simple halves:
        // stored ⟨1,0,1,2,0⟩? Construct a path already using its budget:
        // ⟨2,0,1,2,0⟩ splits ⟨2,0,1,2⟩? not simple. ⟨2,0⟩‖⟨0,1,2,0⟩? not
        // simple. ⟨2,0,1⟩‖⟨1,2,0⟩: both simple ✓ so it is redundant; now
        // extending by 1 gives ⟨2,0,1,2,0,1⟩ which has no simple split.
        let stored = Path::from_indices(&[2, 0, 1, 2, 0]).unwrap();
        assert!(stored.is_redundant());
        let fw = flood_forwards(&t, id(0), 0, 1.0, &stored);
        let targets: Vec<usize> = fw.iter().map(|(w, _)| w.index()).collect();
        assert!(!targets.contains(&1), "⟨2,0,1,2,0,1⟩ is not redundant");
    }

    #[test]
    fn simple_mode_blocks_cycles() {
        let t = topo(4, FloodMode::SimpleOnly);
        let stored = Path::from_indices(&[1, 2, 0]).unwrap();
        let fw = flood_forwards(&t, id(0), 0, 1.0, &stored);
        let targets: Vec<usize> = fw.iter().map(|(w, _)| w.index()).collect();
        assert_eq!(targets, vec![3], "only the cycle-free extension survives");
    }
}
