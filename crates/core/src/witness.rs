//! Algorithm 1 (**Byzantine Witness**) and Algorithm 2 (**Completeness**):
//! the per-round, per-node state machine.
//!
//! Each node runs one *thread* per fault-set guess `F_v ⊆ V ∖ {v}`,
//! `|F_v| ≤ f` (Algorithm 1 line 5). A thread progresses through:
//!
//! 1. **Maximal-Consistency** (line 10): `M_v|_F̄v` is consistent and full
//!    — then the node FIFO-floods `(M_v|_F̄v, COMPLETE(F_v))`. Detection
//!    continues even after the round has fired: other nodes' liveness
//!    depends on these witnesses.
//! 2. **FIFO-Receive-All** (line 12): for every `c ∈ reach_v(F̄v)`, the
//!    same `(M_c, COMPLETE(F_v))` arrived over *all* simple `(c,v)`-paths
//!    inside the reach set.
//! 3. **Verify** (line 20): every consistent `COMPLETE(F_u)` received over
//!    a path inside the reach set passes `Completeness(M_v, M_c, F_u)` —
//!    each value of each source component `S_{F_u,F_w}` was confirmed over
//!    a path set with no `f`-cover avoiding the component.
//!
//! The first thread to pass Verify runs Filter-and-Average; the shared
//! `nextround` flag (here [`RoundCore::fired`]) ensures it happens once.
//!
//! All per-message path state is interned: guess matching and reach
//! containment read precomputed [`PathIndex`](dbac_graph::PathIndex)
//! bitmasks, and the FIFO-Receive-All dedup set keys `(PathId, u64)`
//! instead of hashing owned paths.

use crate::filter::{filter_and_average, FilterOutcome};
use crate::message_set::{CompletePayload, MessageSet};
use crate::precompute::Topology;
use dbac_conditions::cover::has_cover;
use dbac_graph::{FastHashMap, NodeId, NodeSet, PathId};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Static per-node plan: one entry per fault-set guess excluding the node.
#[derive(Debug)]
pub struct NodePlan {
    me: NodeId,
    guesses: Vec<GuessPlan>,
}

/// Precomputed constants for one guess `F_v`.
#[derive(Debug)]
pub struct GuessPlan {
    /// The guessed fault set.
    pub guess: NodeSet,
    /// `reach_me(F_v)`.
    pub reach: NodeSet,
    /// Number of required flood paths (pool paths avoiding the guess).
    pub flood_required: usize,
    /// Per witness `c ∈ reach`: number of simple `(c, me)`-paths inside
    /// the reach set (the FIFO-Receive-All requirement).
    pub fra_required: Vec<(NodeId, usize)>,
}

impl NodePlan {
    /// Builds the plan for node `me`.
    #[must_use]
    pub fn new(topo: &Topology, me: NodeId) -> Self {
        let index = topo.index();
        let simple = topo.simple_paths_to(me);
        let mut guesses = Vec::new();
        for &guess in topo.guesses() {
            if guess.contains(me) {
                continue;
            }
            let reach = topo.reach_of(me, guess);
            let flood_required = index.required_count(guess, me);
            let mut per_c: FastHashMap<NodeId, usize> = FastHashMap::default();
            for &p in simple {
                if index.is_within(p, reach) {
                    *per_c.entry(index.init(p)).or_insert(0) += 1;
                }
            }
            let mut fra_required: Vec<(NodeId, usize)> = per_c.into_iter().collect();
            fra_required.sort_unstable_by_key(|&(c, _)| c);
            guesses.push(GuessPlan { guess, reach, flood_required, fra_required });
        }
        NodePlan { me, guesses }
    }

    /// The node this plan belongs to.
    #[must_use]
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// The per-guess plans.
    #[must_use]
    pub fn guesses(&self) -> &[GuessPlan] {
        &self.guesses
    }
}

/// An action the node must perform as a result of a state transition.
#[derive(Clone, Debug)]
pub enum RoundAction {
    /// A thread passed Maximal-Consistency: FIFO-flood
    /// `(payload, COMPLETE(guess))` (the node assigns the FIFO counter).
    FloodComplete {
        /// The guess `F_v` of the thread that fired.
        guess: NodeSet,
        /// The snapshot `M_v|_F̄v`.
        payload: Arc<CompletePayload>,
    },
    /// Verify passed in some thread: Filter-and-Average produced the next
    /// state value; the node advances to the next round.
    Advance {
        /// The guess of the winning thread (telemetry: which suspicion
        /// unblocked the round).
        guess: NodeSet,
        /// The Filter-and-Average outcome.
        outcome: FilterOutcome,
    },
}

struct ThreadState {
    plan_idx: usize,
    consistent: bool,
    value_by_init: FastHashMap<NodeId, u64>,
    flood_remaining: usize,
    mc_fired: bool,
    fra: FastHashMap<NodeId, FraProgress>,
    fra_remaining: usize,
    relevant_trackers: Vec<usize>,
}

/// FIFO-Receive-All progress for one witness. The dedup set and counters
/// are keyed by payload fingerprints — Byzantine-influenced bytes — so they
/// use the seeded default hasher rather than `FastHashMap`.
struct FraProgress {
    required: usize,
    seen: HashSet<(PathId, u64)>,
    counts: HashMap<u64, usize>,
    done: bool,
}

struct Obligation {
    component: NodeSet,
    q: NodeId,
    xq_bits: u64,
    satisfied: bool,
}

struct CompletenessTracker {
    consistent: bool,
    impossible: bool,
    pending: usize,
    obligations: Vec<Obligation>,
}

impl CompletenessTracker {
    /// A tracker blocks Verify iff its payload is consistent (inconsistent
    /// ones are skipped per Algorithm 1 line 24) but Completeness fails.
    fn blocking(&self) -> bool {
        self.consistent && (self.impossible || self.pending > 0)
    }
}

/// Per-round BW state for one node.
pub struct RoundCore {
    me: NodeId,
    n: usize,
    f: usize,
    started: bool,
    fired: bool,
    mset: MessageSet,
    // The maps below key on value bits or payload fingerprints — bytes a
    // Byzantine sender chooses — so they use the seeded default hasher.
    paths_by_init_value: HashMap<(NodeId, u64), Vec<NodeSet>>,
    threads: Vec<ThreadState>,
    trackers: Vec<CompletenessTracker>,
    tracker_index: HashMap<(u128, u64), usize>,
    /// (q, value-bits) → obligations waiting on new paths carrying it.
    waiters: HashMap<(NodeId, u64), Vec<(usize, usize)>>,
}

impl RoundCore {
    /// Creates the round state for node `me`.
    #[must_use]
    pub fn new(topo: &Topology, plan: &NodePlan) -> Self {
        let threads = plan
            .guesses
            .iter()
            .enumerate()
            .map(|(i, g)| ThreadState {
                plan_idx: i,
                consistent: true,
                value_by_init: FastHashMap::default(),
                flood_remaining: g.flood_required,
                mc_fired: false,
                fra: g
                    .fra_required
                    .iter()
                    .map(|&(c, required)| {
                        (
                            c,
                            FraProgress {
                                required,
                                seen: HashSet::new(),
                                counts: HashMap::new(),
                                done: false,
                            },
                        )
                    })
                    .collect(),
                fra_remaining: g.fra_required.len(),
                relevant_trackers: Vec::new(),
            })
            .collect();
        RoundCore {
            me: plan.me,
            n: topo.graph().node_count(),
            f: topo.f(),
            started: false,
            fired: false,
            mset: MessageSet::new(),
            paths_by_init_value: HashMap::new(),
            threads,
            trackers: Vec::new(),
            tracker_index: HashMap::new(),
            waiters: HashMap::new(),
        }
    }

    /// Whether the node has begun this round (own value recorded).
    #[must_use]
    pub fn started(&self) -> bool {
        self.started
    }

    /// Whether Filter-and-Average already ran (the `nextround` flag).
    #[must_use]
    pub fn fired(&self) -> bool {
        self.fired
    }

    /// The accumulated message history `M_v` for this round.
    #[must_use]
    pub fn message_set(&self) -> &MessageSet {
        &self.mset
    }

    /// Begins the round with the node's current state value: records
    /// `(x, ⟨me⟩)` (the trivial path required by fullness).
    pub fn start(&mut self, value: f64, topo: &Topology, plan: &NodePlan) -> Vec<RoundAction> {
        debug_assert!(!self.started, "round started twice");
        self.started = true;
        let mut actions = Vec::new();
        self.ingest(topo.index().trivial(self.me), value, topo, plan, &mut actions);
        self.check_progress(topo, plan, &mut actions);
        actions
    }

    /// Records a validated flood arrival. `stored` is the wire path
    /// extended with `me`. Returns `(fresh, actions)`; relays happen only
    /// when `fresh` (RedundantFlood's "first message with path p").
    pub fn add_flood(
        &mut self,
        stored: PathId,
        value: f64,
        topo: &Topology,
        plan: &NodePlan,
    ) -> (bool, Vec<RoundAction>) {
        if self.mset.contains_path(stored) {
            return (false, Vec::new());
        }
        let mut actions = Vec::new();
        self.ingest(stored, value, topo, plan, &mut actions);
        self.check_progress(topo, plan, &mut actions);
        (true, actions)
    }

    fn ingest(
        &mut self,
        stored: PathId,
        value: f64,
        topo: &Topology,
        plan: &NodePlan,
        actions: &mut Vec<RoundAction>,
    ) {
        let index = topo.index();
        let node_set = index.node_set(stored);
        let init = index.init(stored);
        let bits = value.to_bits();
        let inserted = self.mset.insert(stored, value);
        debug_assert!(inserted, "caller checked freshness");

        if !self.fired {
            // Feed Completeness obligations (Algorithm 2, incremental).
            self.paths_by_init_value.entry((init, bits)).or_default().push(node_set);
            if let Some(waiting) = self.waiters.get(&(init, bits)) {
                let waiting = waiting.clone();
                let paths = self.paths_by_init_value[&(init, bits)].clone();
                for (t_idx, o_idx) in waiting {
                    let tracker = &mut self.trackers[t_idx];
                    let ob = &mut tracker.obligations[o_idx];
                    debug_assert_eq!((ob.q, ob.xq_bits), (init, bits), "waiter key mismatch");
                    if ob.satisfied {
                        continue;
                    }
                    let allowed =
                        NodeSet::universe(self.n) - ob.component - NodeSet::singleton(self.me);
                    if !has_cover(&paths, self.f, allowed) {
                        ob.satisfied = true;
                        tracker.pending -= 1;
                    }
                }
            }
        }

        // Maximal-Consistency tracking — continues after `fired` (other
        // nodes depend on our COMPLETE witnesses). Every validated arrival
        // is interned in the active mode's population, so every stored
        // path counts toward the pools it avoids.
        for thread in &mut self.threads {
            if thread.mc_fired {
                continue;
            }
            let gp = &plan.guesses[thread.plan_idx];
            if !node_set.is_disjoint(gp.guess) {
                continue;
            }
            thread.flood_remaining -= 1;
            if thread.consistent {
                match thread.value_by_init.entry(init) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(bits);
                    }
                    std::collections::hash_map::Entry::Occupied(e) => {
                        if *e.get() != bits {
                            thread.consistent = false;
                        }
                    }
                }
            }
            if thread.consistent && thread.flood_remaining == 0 {
                thread.mc_fired = true;
                let payload = Arc::new(CompletePayload::from_message_set(
                    &self.mset.exclusion(gp.guess, index),
                ));
                actions.push(RoundAction::FloodComplete { guess: gp.guess, payload });
            }
        }
    }

    /// Records a FIFO-received `COMPLETE` (including the node's own, via
    /// the trivial path).
    #[allow(clippy::too_many_arguments)]
    pub fn add_fifo_delivery(
        &mut self,
        initiator: NodeId,
        delivery_path: PathId,
        suspects: NodeSet,
        payload: &Arc<CompletePayload>,
        fingerprint: u64,
        topo: &Topology,
        plan: &NodePlan,
    ) -> Vec<RoundAction> {
        let mut actions = Vec::new();
        if self.fired {
            return actions;
        }
        let tracker_idx = self.obtain_tracker(suspects, payload, fingerprint, topo);
        let path_nodes = topo.index().node_set(delivery_path);

        for thread in &mut self.threads {
            let gp = &plan.guesses[thread.plan_idx];
            if !path_nodes.is_subset(gp.reach) {
                continue;
            }
            // Verify-relevance (Algorithm 1 line 24).
            if !thread.relevant_trackers.contains(&tracker_idx) {
                thread.relevant_trackers.push(tracker_idx);
            }
            // FIFO-Receive-All progress (line 12) — only for this guess.
            if suspects == gp.guess {
                if let Some(progress) = thread.fra.get_mut(&initiator) {
                    if !progress.done && progress.seen.insert((delivery_path, fingerprint)) {
                        let count = progress.counts.entry(fingerprint).or_insert(0);
                        *count += 1;
                        if *count == progress.required {
                            progress.done = true;
                            thread.fra_remaining -= 1;
                        }
                    }
                }
            }
        }
        self.check_progress(topo, plan, &mut actions);
        actions
    }

    fn obtain_tracker(
        &mut self,
        suspects: NodeSet,
        payload: &Arc<CompletePayload>,
        fingerprint: u64,
        topo: &Topology,
    ) -> usize {
        if let Some(&idx) = self.tracker_index.get(&(suspects.bits(), fingerprint)) {
            return idx;
        }
        let consistent = payload.is_consistent(topo.index());
        let mut tracker = CompletenessTracker {
            consistent,
            impossible: false,
            pending: 0,
            obligations: Vec::new(),
        };
        let idx = self.trackers.len();
        if consistent {
            for &(component, q) in topo.completeness_obligations(suspects) {
                let Some(xq) = payload.value_of(q, topo.index()) else {
                    tracker.impossible = true;
                    continue;
                };
                let xq_bits = xq.to_bits();
                let allowed = NodeSet::universe(self.n) - component - NodeSet::singleton(self.me);
                let already = self
                    .paths_by_init_value
                    .get(&(q, xq_bits))
                    .is_some_and(|paths| !has_cover(paths, self.f, allowed));
                let o_idx = tracker.obligations.len();
                tracker.obligations.push(Obligation { component, q, xq_bits, satisfied: already });
                if !already {
                    tracker.pending += 1;
                    self.waiters.entry((q, xq_bits)).or_default().push((idx, o_idx));
                }
            }
        }
        self.trackers.push(tracker);
        self.tracker_index.insert((suspects.bits(), fingerprint), idx);
        idx
    }

    fn check_progress(&mut self, topo: &Topology, plan: &NodePlan, actions: &mut Vec<RoundAction>) {
        if self.fired || !self.started {
            return;
        }
        for thread in &self.threads {
            if thread.fra_remaining != 0 {
                continue;
            }
            if thread.relevant_trackers.iter().any(|&t| self.trackers[t].blocking()) {
                continue;
            }
            // Verify passed: Filter-and-Average, once per round.
            let outcome = filter_and_average(&self.mset, self.f, self.me, self.n, topo.index())
                .expect("own trivial path keeps the trimmed vector non-empty");
            self.fired = true;
            actions
                .push(RoundAction::Advance { guess: plan.guesses[thread.plan_idx].guess, outcome });
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{clique_topo, pid};

    fn id(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn setup(n: usize, f: usize) -> (Topology, NodePlan) {
        let topo = clique_topo(n, f);
        let plan = NodePlan::new(&topo, id(0));
        (topo, plan)
    }

    #[test]
    fn plan_excludes_self_from_guesses() {
        let (_, plan) = setup(4, 1);
        assert_eq!(plan.me(), id(0));
        // ∅ plus the three singletons not containing node 0.
        assert_eq!(plan.guesses().len(), 4);
        assert!(plan.guesses().iter().all(|g| !g.guess.contains(id(0))));
    }

    #[test]
    fn plan_counts_required_paths() {
        let (topo, plan) = setup(4, 1);
        let pool = topo.required_paths_to(id(0)).len();
        let empty_guess = plan.guesses().iter().find(|g| g.guess.is_empty()).unwrap();
        assert_eq!(empty_guess.flood_required, pool);
        // A singleton guess shrinks the requirement strictly.
        let singleton = plan.guesses().iter().find(|g| g.guess.len() == 1).unwrap();
        assert!(singleton.flood_required < pool);
        // FRA witnesses = everyone outside the guess (clique reach).
        assert_eq!(empty_guess.fra_required.len(), 4);
        assert_eq!(singleton.fra_required.len(), 3);
    }

    #[test]
    fn start_records_trivial_path() {
        let (topo, plan) = setup(4, 1);
        let mut core = RoundCore::new(&topo, &plan);
        assert!(!core.started());
        let actions = core.start(2.5, &topo, &plan);
        assert!(core.started());
        assert!(actions.is_empty(), "one value cannot complete a clique's pool");
        assert_eq!(core.message_set().value_on_path(topo.index().trivial(id(0))), Some(2.5));
    }

    #[test]
    fn duplicate_flood_is_not_fresh() {
        let (topo, plan) = setup(4, 1);
        let mut core = RoundCore::new(&topo, &plan);
        core.start(0.0, &topo, &plan);
        let p = pid(&topo, &[1, 0]);
        let (fresh, _) = core.add_flood(p, 1.0, &topo, &plan);
        assert!(fresh);
        let (fresh, _) = core.add_flood(p, 9.0, &topo, &plan);
        assert!(!fresh, "same path must not relay twice");
    }

    #[test]
    fn maximal_consistency_fires_when_pool_complete() {
        // Feed node 0 every pool path with consistent per-initiator values.
        let (topo, plan) = setup(3, 0);
        // f = 0: single guess (the empty set), pool = all redundant paths.
        let mut core = RoundCore::new(&topo, &plan);
        let mut actions = core.start(0.5, &topo, &plan);
        let values = [0.5, 1.0, 2.0];
        for &path in topo.required_paths_to(id(0)) {
            if topo.index().is_trivial(path) {
                continue; // own trivial path already in
            }
            let v = values[topo.index().init(path).index()];
            let (_, mut acts) = core.add_flood(path, v, &topo, &plan);
            actions.append(&mut acts);
        }
        let completes: Vec<_> =
            actions.iter().filter(|a| matches!(a, RoundAction::FloodComplete { .. })).collect();
        assert_eq!(completes.len(), 1, "single guess fires exactly once");
        match completes[0] {
            RoundAction::FloodComplete { guess, payload } => {
                assert!(guess.is_empty());
                assert_eq!(payload.len(), topo.required_paths_to(id(0)).len());
                assert!(payload.is_consistent(topo.index()));
            }
            RoundAction::Advance { .. } => unreachable!(),
        }
    }

    #[test]
    fn inconsistent_values_block_a_guess() {
        let (topo, plan) = setup(3, 0);
        let mut core = RoundCore::new(&topo, &plan);
        core.start(0.5, &topo, &plan);
        let mut fired = Vec::new();
        for &path in topo.required_paths_to(id(0)) {
            if topo.index().is_trivial(path) {
                continue;
            }
            // Value depends on the whole path, so initiators equivocate.
            let v = topo.index().node_count(path) as f64;
            let (_, acts) = core.add_flood(path, v, &topo, &plan);
            fired.extend(acts);
        }
        assert!(
            fired.iter().all(|a| !matches!(a, RoundAction::FloodComplete { .. })),
            "equivocation must block Maximal-Consistency"
        );
    }

    #[test]
    fn full_round_on_tiny_clique_advances() {
        // f = 0 on K3: feed all floods, then deliver every node's COMPLETE
        // over every simple path — the round must advance.
        let (topo, plan) = setup(3, 0);
        let mut core = RoundCore::new(&topo, &plan);
        let mut all_actions = core.start(1.0, &topo, &plan);
        let values = [1.0, 2.0, 3.0];
        for &path in topo.required_paths_to(id(0)) {
            if topo.index().is_trivial(path) {
                continue;
            }
            let value = values[topo.index().init(path).index()];
            let (_, acts) = core.add_flood(path, value, &topo, &plan);
            all_actions.extend(acts);
        }
        // Own COMPLETE fired; simulate the self-delivery.
        let own = all_actions
            .iter()
            .find_map(|a| match a {
                RoundAction::FloodComplete { payload, .. } => Some(Arc::clone(payload)),
                RoundAction::Advance { .. } => None,
            })
            .expect("own MC fired");
        let fp = own.fingerprint();
        let mut acts = core.add_fifo_delivery(
            id(0),
            topo.index().trivial(id(0)),
            NodeSet::EMPTY,
            &own,
            fp,
            &topo,
            &plan,
        );
        all_actions.append(&mut acts);

        // Peers 1 and 2 send the same COMPLETE (their view: same values on
        // all their pool paths). Build each peer's payload from its pool.
        for c in [id(1), id(2)] {
            let mut m = MessageSet::new();
            for &path in topo.required_paths_to(c) {
                m.insert(path, values[topo.index().init(path).index()]);
            }
            let payload = Arc::new(CompletePayload::from_message_set(&m));
            let fp = payload.fingerprint();
            // Deliver over every simple (c, 0)-path.
            for &p in topo.simple_paths_to(id(0)) {
                if topo.index().init(p) != c || topo.index().is_trivial(p) {
                    continue;
                }
                let mut acts =
                    core.add_fifo_delivery(c, p, NodeSet::EMPTY, &payload, fp, &topo, &plan);
                all_actions.append(&mut acts);
            }
        }
        let advance = all_actions.iter().find_map(|a| match a {
            RoundAction::Advance { outcome, .. } => Some(*outcome),
            RoundAction::FloodComplete { .. } => None,
        });
        let outcome = advance.expect("round must advance");
        assert!(core.fired());
        // f = 0: no trimming; midpoint of 1 and 3.
        assert_eq!(outcome.value, 2.0);
    }

    #[test]
    fn inconsistent_complete_payloads_never_block_verify() {
        // Algorithm 1 line 24: only *consistent* M_c impose Completeness
        // conjuncts; a tampered, self-contradicting payload is ignored.
        let (topo, plan) = setup(4, 1);
        let mut core = RoundCore::new(&topo, &plan);
        core.start(1.0, &topo, &plan);
        let mut m = MessageSet::new();
        m.insert(pid(&topo, &[1, 0]), 3.0);
        m.insert(pid(&topo, &[1, 2, 0]), 9.0); // equivocation
        let payload = Arc::new(CompletePayload::from_message_set(&m));
        assert!(!payload.is_consistent(topo.index()));
        let fp = payload.fingerprint();
        core.add_fifo_delivery(
            id(1),
            pid(&topo, &[1, 0]),
            NodeSet::singleton(id(2)),
            &payload,
            fp,
            &topo,
            &plan,
        );
        assert_eq!(core.trackers.len(), 1);
        assert!(!core.trackers[0].blocking(), "inconsistent payloads are skipped");
    }

    #[test]
    fn missing_source_value_blocks_forever() {
        // A consistent payload that lacks a source-component value can
        // never pass Completeness: M' stays empty, the empty f-cover
        // exists, output is false (Algorithm 2).
        let (topo, plan) = setup(4, 1);
        let mut core = RoundCore::new(&topo, &plan);
        core.start(1.0, &topo, &plan);
        // Payload with a single entry from node 1 — nodes 2 and 3 are in
        // source components of some (F_u, F_w) pair but absent here.
        let mut m = MessageSet::new();
        m.insert(pid(&topo, &[1, 0]), 3.0);
        let payload = Arc::new(CompletePayload::from_message_set(&m));
        let fp = payload.fingerprint();
        core.add_fifo_delivery(
            id(1),
            pid(&topo, &[1, 0]),
            NodeSet::singleton(id(2)),
            &payload,
            fp,
            &topo,
            &plan,
        );
        assert_eq!(core.trackers.len(), 1);
        assert!(core.trackers[0].impossible);
        assert!(core.trackers[0].blocking());
        // Feeding matching floods does not unblock an impossible tracker.
        for &path in topo.required_paths_to(id(0)) {
            if topo.index().is_trivial(path) {
                continue;
            }
            let _ = core.add_flood(path, 3.0, &topo, &plan);
        }
        assert!(core.trackers[0].blocking());
    }

    #[test]
    fn trackers_deduplicate_by_suspects_and_content() {
        let (topo, plan) = setup(4, 1);
        let mut core = RoundCore::new(&topo, &plan);
        core.start(1.0, &topo, &plan);
        let mut m = MessageSet::new();
        m.insert(pid(&topo, &[1, 0]), 3.0);
        let payload = Arc::new(CompletePayload::from_message_set(&m));
        let fp = payload.fingerprint();
        for p in [pid(&topo, &[1, 0]), pid(&topo, &[1, 2, 0])] {
            core.add_fifo_delivery(id(1), p, NodeSet::singleton(id(3)), &payload, fp, &topo, &plan);
        }
        assert_eq!(core.trackers.len(), 1, "same (F_u, content) → one tracker");
        // A different suspect set is a distinct Completeness instance.
        core.add_fifo_delivery(
            id(1),
            pid(&topo, &[1, 0]),
            NodeSet::singleton(id(2)),
            &payload,
            fp,
            &topo,
            &plan,
        );
        assert_eq!(core.trackers.len(), 2);
    }

    #[test]
    fn mc_detection_continues_after_fired() {
        // After the round fires, a still-pending guess whose pool completes
        // must still emit FloodComplete (peer liveness).
        let (topo, plan) = setup(3, 1);
        let mut core = RoundCore::new(&topo, &plan);
        core.fired = true; // simulate an already-advanced round
        core.started = true;
        let mut actions = Vec::new();
        core.ingest(topo.index().trivial(id(0)), 1.0, &topo, &plan, &mut actions);
        for &path in topo.required_paths_to(id(0)) {
            if topo.index().is_trivial(path) {
                continue;
            }
            let (fresh, acts) = core.add_flood(path, 1.0, &topo, &plan);
            assert!(fresh);
            actions.extend(acts);
        }
        assert!(
            actions.iter().any(|a| matches!(a, RoundAction::FloodComplete { .. })),
            "witness flooding must survive round advancement"
        );
        assert!(
            !actions.iter().any(|a| matches!(a, RoundAction::Advance { .. })),
            "a fired round cannot advance again"
        );
    }
}
