//! Algorithm 1 (**Byzantine Witness**) and Algorithm 2 (**Completeness**):
//! the per-round, per-node state machine, batched over the columnar
//! [`MessageSet`].
//!
//! Each node runs one *thread* per fault-set guess `F_v ⊆ V ∖ {v}`,
//! `|F_v| ≤ f` (Algorithm 1 line 5). A thread progresses through:
//!
//! 1. **Maximal-Consistency** (line 10): `M_v|_F̄v` is consistent and full
//!    — then the node FIFO-floods `(M_v|_F̄v, COMPLETE(F_v))`. Detection
//!    continues even after the round has fired: other nodes' liveness
//!    depends on these witnesses.
//! 2. **FIFO-Receive-All** (line 12): for every `c ∈ reach_v(F̄v)`, the
//!    same `(M_c, COMPLETE(F_v))` arrived over *all* simple `(c,v)`-paths
//!    inside the reach set.
//! 3. **Verify** (line 20): every consistent `COMPLETE(F_u)` received over
//!    a path inside the reach set passes `Completeness(M_v, M_c, F_u)` —
//!    each value of each source component `S_{F_u,F_w}` was confirmed over
//!    a path set with no `f`-cover avoiding the component.
//!
//! The first thread to pass Verify runs Filter-and-Average; the shared
//! `nextround` flag (here [`RoundCore::fired`]) ensures it happens once.
//!
//! # Mask-scan design
//!
//! Per-guess progress is *computed from the columns*, not tracked in
//! per-path hash maps. [`NodePlan`] precomputes, once per node:
//!
//! * **Avoiding masks** — per guess, the word bitmap
//!   `terminal_words(me) ∧ ¬excluded(F_v)` over the node's contiguous
//!   terminal-major id block (`PathIndex::terminal_word_range`): exactly
//!   the flood pool the guess requires. Ingest probes one bit of it per
//!   guess (replacing a `NodeSet` disjointness test plus hash-map update),
//!   and a per-thread countdown of its popcount detects pool completion.
//! * **Per-init value-column slices** — `init_words(q)` restricted to the
//!   same word range. When a pool completes, consistency of `M_v|_F̄v` is
//!   decided by masked scans: AND the presence column against
//!   `avoid ∧ init_slice(q)` and compare the value column at the surviving
//!   bits ([`NodePlan::mc_status`] is the public all-initiator form — the
//!   `mc_scan` bench kernel). Inside [`RoundCore`] the scan is narrowed
//!   further by a round-global census (first value bits per initiator plus
//!   a `dirty` set of equivocators, one array compare per arrival): at
//!   pool completion only the *dirty* initiators' slices are walked — none
//!   at all in an honest round. The `COMPLETE` payload is gathered by the
//!   same masked walk — no intermediate excluded `MessageSet` clone.
//! * **FRA slot masks** — the simple paths ending at `me` get a dense
//!   *slot* renumbering; per `(guess, witness c)` the plan holds the slot
//!   bitmap of the simple `(c, me)`-paths inside `reach_me(F̄v)`.
//!   FIFO-Receive-All progress for one payload fingerprint is a slot
//!   bitmap (test-and-set dedup, replacing a `HashSet<(PathId, u64)>`)
//!   plus a countdown of the mask popcount (replacing a fingerprint-count
//!   hash map).
//!
//! The Completeness path sets of Algorithm 2 (`M'`, consumed by
//! `has_cover`) are likewise kept off the hash path: an array indexed by
//! initiator holding small per-value buckets — one index plus a one-entry
//! linear probe per arrival, hashing of the Byzantine-influenced value
//! bits happens only in the rare waiter-wakeup path.
//!
//! Per-round state is therefore plain counters, bitmaps and buckets:
//! [`RoundCore::new`] allocates nothing, thread state materializes lazily
//! behind the first flood/start, and the FRA bitmaps are drawn from a
//! [`WitnessScratch`] column pool owned by the node (allocated once in
//! `HonestNode`, recycled as witnesses complete) instead of re-allocating
//! hash maps in every round.
//!
//! The pre-mask, counter-based implementation survives as
//! [`reference`] (feature `reference-witness`, always on under
//! `cfg(test)`), driven through identical flood/COMPLETE sequences by
//! `tests/differential_witness.rs` and the property tests below.
//!
//! All per-message path state is interned: guess matching and reach
//! containment read precomputed [`PathIndex`](dbac_graph::PathIndex)
//! bitmasks, and wire ids are resolved at the validation boundary before
//! they reach this module.

use crate::filter::{filter_and_average, FilterOutcome};
use crate::message_set::{CompletePayload, MessageSet};
use crate::precompute::Topology;
use dbac_conditions::cover::has_cover;
use dbac_graph::{NodeId, NodeSet, PathId};
use std::collections::HashMap;
use std::sync::Arc;

#[cfg(any(test, feature = "reference-witness"))]
pub mod reference;

/// Sentinel in the slot look-up table for ids without an FRA slot.
const NO_SLOT: u32 = u32::MAX;

/// Static per-node plan: one entry per fault-set guess excluding the node,
/// plus the precomputed mask sets every round's scans run against (see the
/// module docs).
#[derive(Debug)]
pub struct NodePlan {
    me: NodeId,
    /// First word of the id space covered by the per-guess masks — the
    /// start of `me`'s terminal-major id block.
    word_base: usize,
    /// Number of mask words (the block's word-range length).
    mask_words: usize,
    /// Per initiator `q`: `init_words(q)` sliced to the mask range — the
    /// per-init value-column slices the consistency scan walks.
    init_slices: Vec<Vec<u64>>,
    /// `id - 64·word_base` → dense FRA slot over the simple paths ending
    /// at `me`, or [`NO_SLOT`].
    fra_slot: Vec<u32>,
    /// Words covering the FRA slot space.
    fra_slot_words: usize,
    guesses: Vec<GuessPlan>,
}

/// Precomputed constants and masks for one guess `F_v`.
#[derive(Debug)]
pub struct GuessPlan {
    /// The guessed fault set.
    pub guess: NodeSet,
    /// `reach_me(F_v)`.
    pub reach: NodeSet,
    /// Number of required flood paths (pool paths avoiding the guess —
    /// the popcount of the avoiding mask).
    pub flood_required: usize,
    /// The avoiding mask: pool paths ending at `me` that avoid the guess,
    /// word-aligned to the plan's mask range.
    avoid_words: Vec<u64>,
    /// FIFO-Receive-All witnesses, ascending by node id.
    fra_witnesses: Vec<FraWitness>,
}

impl GuessPlan {
    /// The FIFO-Receive-All witnesses of this guess, ascending by node.
    #[must_use]
    pub fn fra_witnesses(&self) -> &[FraWitness] {
        &self.fra_witnesses
    }
}

/// One FIFO-Receive-All witness `c` of a guess: the precomputed slot mask
/// of the simple `(c, me)`-paths inside the reach set.
#[derive(Debug)]
pub struct FraWitness {
    /// The witness `c ∈ reach_me(F̄v)`.
    pub c: NodeId,
    /// Number of simple `(c, me)`-paths inside the reach set (the mask's
    /// popcount — the FIFO-Receive-All requirement).
    pub required: usize,
    /// Slot bitmap of those paths over the plan's FRA slot space.
    mask: Vec<u64>,
}

impl FraWitness {
    /// The witness's slot mask over the plan's FRA slot space (bit `s` set
    /// iff the `s`-th simple path ending at the node is a `(c, me)`-path
    /// inside the reach set).
    #[must_use]
    pub fn mask(&self) -> &[u64] {
        &self.mask
    }
}

/// Maximal-Consistency status of one guess, recomputed from the columns
/// (the `mc_scan` kernel).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct McStatus {
    /// Every pool path avoiding the guess has reported (Definition 9).
    pub full: bool,
    /// `M|_F̄v` is consistent (Definition 8).
    pub consistent: bool,
}

impl NodePlan {
    /// Builds the plan for node `me`, precomputing the per-guess mask sets.
    #[must_use]
    pub fn new(topo: &Topology, me: NodeId) -> Self {
        let index = topo.index();
        let n = topo.graph().node_count();
        let words = index.terminal_word_range(me);
        let (word_base, mask_words) = (words.start, words.len());
        let init_slices: Vec<Vec<u64>> =
            (0..n).map(|q| index.init_words(NodeId::new(q))[words.clone()].to_vec()).collect();

        // Dense slot renumbering of the simple paths ending at `me` (the
        // FIFO delivery-path space), in id order.
        let simple = index.simple_paths_ending_at(me);
        let fra_slot_words = simple.len().div_ceil(64);
        let mut fra_slot = vec![NO_SLOT; mask_words * 64];
        for (s, &p) in simple.iter().enumerate() {
            fra_slot[p.index() - word_base * 64] = u32::try_from(s).expect("slot space within u32");
        }

        let mut guesses = Vec::new();
        for &guess in topo.guesses() {
            if guess.contains(me) {
                continue;
            }
            let reach = topo.reach_of(me, guess);
            let avoid_words = index.avoiding_words(guess, me, words.clone());
            let flood_required = avoid_words.iter().map(|w| w.count_ones() as usize).sum();
            // Bucket the in-reach simple paths by initiator into slot masks.
            let mut masks: Vec<Option<Vec<u64>>> = vec![None; n];
            for (s, &p) in simple.iter().enumerate() {
                if index.is_within(p, reach) {
                    let mask = masks[index.init(p).index()]
                        .get_or_insert_with(|| vec![0u64; fra_slot_words]);
                    mask[s / 64] |= 1u64 << (s % 64);
                }
            }
            let fra_witnesses: Vec<FraWitness> = masks
                .into_iter()
                .enumerate()
                .filter_map(|(c, mask)| {
                    mask.map(|mask| FraWitness {
                        c: NodeId::new(c),
                        required: mask.iter().map(|w| w.count_ones() as usize).sum(),
                        mask,
                    })
                })
                .collect();
            guesses.push(GuessPlan { guess, reach, flood_required, avoid_words, fra_witnesses });
        }
        NodePlan { me, word_base, mask_words, init_slices, fra_slot, fra_slot_words, guesses }
    }

    /// The node this plan belongs to.
    #[must_use]
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// The per-guess plans.
    #[must_use]
    pub fn guesses(&self) -> &[GuessPlan] {
        &self.guesses
    }

    /// Recomputes the Maximal-Consistency status of guess `guess_idx` over
    /// `mset` with word-at-a-time mask scans — no per-arrival state. This
    /// is the batched `mc_scan` kernel measured in `benches/hot_path.rs`.
    ///
    /// `mset` must only hold paths ending at [`NodePlan::me`] (the round
    /// history invariant maintained by [`RoundCore`]).
    #[must_use]
    pub fn mc_status(&self, guess_idx: usize, mset: &MessageSet) -> McStatus {
        let avoid = &self.guesses[guess_idx].avoid_words;
        let full =
            (0..self.mask_words).all(|w| avoid[w] & !mset.present_word(self.word_base + w) == 0);
        let consistent = (0..self.init_slices.len())
            .all(|q| self.initiator_consistent(guess_idx, NodeId::new(q), mset));
        McStatus { full, consistent }
    }

    /// Consistency of initiator `q`'s slice of `M|_F̄v`: the masked scan
    /// restricted to one init slice — the per-completion check for
    /// initiators the round-global census flagged as equivocating.
    pub(crate) fn initiator_consistent(
        &self,
        guess_idx: usize,
        q: NodeId,
        mset: &MessageSet,
    ) -> bool {
        let avoid = &self.guesses[guess_idx].avoid_words;
        let slice = &self.init_slices[q.index()];
        let mut first: Option<u64> = None;
        for w in 0..self.mask_words {
            let mut hits = mset.present_word(self.word_base + w) & avoid[w] & slice[w];
            while hits != 0 {
                let id = (self.word_base + w) * 64 + hits.trailing_zeros() as usize;
                hits &= hits - 1;
                let bits = mset.value_at(id).to_bits();
                match first {
                    None => first = Some(bits),
                    Some(b) if b != bits => return false,
                    Some(_) => {}
                }
            }
        }
        true
    }

    /// Number of nodes in the plan's network.
    pub(crate) fn node_count(&self) -> usize {
        self.init_slices.len()
    }

    /// Gathers the `COMPLETE` payload entries `M|_F̄v` by the same masked
    /// walk, in canonical id order — no excluded-set clone.
    pub(crate) fn gather_avoiding(
        &self,
        guess_idx: usize,
        mset: &MessageSet,
    ) -> Vec<(PathId, f64)> {
        let gp = &self.guesses[guess_idx];
        let mut out = Vec::with_capacity(gp.flood_required);
        for w in 0..self.mask_words {
            let mut hits = mset.present_word(self.word_base + w) & gp.avoid_words[w];
            while hits != 0 {
                let id = (self.word_base + w) * 64 + hits.trailing_zeros() as usize;
                hits &= hits - 1;
                out.push((PathId::from_raw(id as u32), mset.value_at(id)));
            }
        }
        out
    }

    /// The (relative word, bit) of a stored path in the mask range.
    fn mask_bit_of(&self, stored: PathId) -> (usize, u64) {
        let rel = stored.index() - self.word_base * 64;
        (rel / 64, 1u64 << (rel % 64))
    }

    /// The FRA slot of a delivery path, if it is a simple path ending at
    /// `me`.
    fn fra_slot_of(&self, p: PathId) -> Option<usize> {
        let rel = p.index().checked_sub(self.word_base * 64)?;
        let s = *self.fra_slot.get(rel)?;
        (s != NO_SLOT).then_some(s as usize)
    }
}

/// An action the node must perform as a result of a state transition.
#[derive(Clone, Debug)]
pub enum RoundAction {
    /// A thread passed Maximal-Consistency: FIFO-flood
    /// `(payload, COMPLETE(guess))` (the node assigns the FIFO counter).
    FloodComplete {
        /// The guess `F_v` of the thread that fired.
        guess: NodeSet,
        /// The snapshot `M_v|_F̄v`.
        payload: Arc<CompletePayload>,
    },
    /// Verify passed in some thread: Filter-and-Average produced the next
    /// state value; the node advances to the next round.
    Advance {
        /// The guess of the winning thread (telemetry: which suspicion
        /// unblocked the round).
        guess: NodeSet,
        /// The Filter-and-Average outcome.
        outcome: FilterOutcome,
    },
}

/// The reusable scratch column set of one node: a pool of FRA slot
/// columns shared by every round's witness threads. Allocated once (in
/// `HonestNode`), handed to [`RoundCore::add_fifo_delivery`], and refilled
/// as witnesses complete — per-round state machines allocate no hash maps
/// and no per-round column storage of their own.
#[derive(Debug, Default)]
pub struct WitnessScratch {
    columns: Vec<Vec<u64>>,
    /// Fresh FRA `(path, fingerprint)` marks recorded since the owner
    /// last drained this counter into its stats handle.
    pub fra_marks: u64,
    /// FIFO-Receive-All witnesses completed since the owner last
    /// drained this counter into its stats handle.
    pub witness_completions: u64,
}

impl WitnessScratch {
    /// Creates an empty pool.
    #[must_use]
    pub fn new() -> Self {
        WitnessScratch::default()
    }

    /// Takes a zeroed column of `words` words from the pool (allocating
    /// only when the pool is dry).
    fn take_column(&mut self, words: usize) -> Vec<u64> {
        match self.columns.pop() {
            Some(mut col) => {
                col.clear();
                col.resize(words, 0);
                col
            }
            None => vec![0u64; words],
        }
    }

    /// Pool size cap: safely above the honest high-water mark (in-flight
    /// columns ≈ active rounds × guesses × witnesses), so a Byzantine
    /// distinct-fingerprint burst cannot pin its peak allocation in the
    /// pool for the node's lifetime.
    const MAX_POOLED: usize = 256;

    /// Returns a column to the pool (dropped once the pool is full).
    fn recycle(&mut self, col: Vec<u64>) {
        if self.columns.len() < Self::MAX_POOLED {
            self.columns.push(col);
        }
    }

    /// Number of pooled columns (observability for tests).
    #[must_use]
    pub fn pooled(&self) -> usize {
        self.columns.len()
    }
}

/// Per-guess witness-thread state: plain counters — every requirement is a
/// countdown of a precomputed mask popcount.
struct ThreadState {
    plan_idx: usize,
    /// Avoiding-pool paths not yet reported; MC can fire when this hits 0.
    flood_remaining: usize,
    mc_fired: bool,
    /// The pool completed but the consistency scan failed: inconsistency
    /// of a fixed path set is permanent, so MC can never fire.
    mc_dead: bool,
    /// Parallel to the plan's `fra_witnesses`.
    fra: Vec<FraState>,
    fra_remaining: usize,
    relevant_trackers: Vec<usize>,
}

/// FIFO-Receive-All progress for one witness.
struct FraState {
    done: bool,
    /// Per distinct payload fingerprint: a slot bitmap (dedup) plus a
    /// countdown of the witness mask's popcount.
    by_fp: SpillSlots<FpProgress>,
}

struct FpProgress {
    remaining: usize,
    /// Slot bitmap of the delivery paths seen under this fingerprint —
    /// a column borrowed from the node's [`WitnessScratch`].
    seen: Vec<u64>,
}

/// Key → value slots probed linearly while small — the honest case is one
/// or two distinct keys — spilling to a hash index once a Byzantine peer
/// floods distinct keys, so a probe stays O(1) under attack instead of
/// degrading linearly with the attack length. Keys are
/// Byzantine-influenced bytes (value bits, payload fingerprints), so the
/// spill index uses the seeded default hasher.
struct SpillSlots<V> {
    entries: Vec<(u64, V)>,
    index: Option<HashMap<u64, usize>>,
}

impl<V> SpillSlots<V> {
    /// Linear-probe budget before the hash index is built.
    const SPILL: usize = 4;

    fn new() -> Self {
        SpillSlots { entries: Vec::new(), index: None }
    }

    fn position(&self, key: u64) -> Option<usize> {
        match &self.index {
            Some(ix) => ix.get(&key).copied(),
            None => self.entries.iter().position(|e| e.0 == key),
        }
    }

    fn get(&self, key: u64) -> Option<&V> {
        self.position(key).map(|i| &self.entries[i].1)
    }

    /// The slot for `key`, inserted via `default` if absent.
    fn entry_or_insert_with(&mut self, key: u64, default: impl FnOnce() -> V) -> &mut V {
        let i = match self.position(key) {
            Some(i) => i,
            None => {
                let i = self.entries.len();
                self.entries.push((key, default()));
                match &mut self.index {
                    Some(ix) => {
                        ix.insert(key, i);
                    }
                    None if self.entries.len() > Self::SPILL => {
                        self.index =
                            Some(self.entries.iter().enumerate().map(|(i, e)| (e.0, i)).collect());
                    }
                    None => {}
                }
                i
            }
        };
        &mut self.entries[i].1
    }

    /// Takes every slot, leaving the container empty (index dropped).
    fn take_entries(&mut self) -> Vec<(u64, V)> {
        self.index = None;
        std::mem::take(&mut self.entries)
    }

    /// Test observability: whether any slot is live.
    #[cfg(test)]
    fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

struct Obligation {
    component: NodeSet,
    q: NodeId,
    xq_bits: u64,
    satisfied: bool,
}

struct CompletenessTracker {
    consistent: bool,
    impossible: bool,
    pending: usize,
    obligations: Vec<Obligation>,
}

impl CompletenessTracker {
    /// A tracker blocks Verify iff its payload is consistent (inconsistent
    /// ones are skipped per Algorithm 1 line 24) but Completeness fails.
    fn blocking(&self) -> bool {
        self.consistent && (self.impossible || self.pending > 0)
    }
}

/// Per-round BW state for one node.
pub struct RoundCore {
    me: NodeId,
    n: usize,
    f: usize,
    started: bool,
    fired: bool,
    mset: MessageSet,
    /// Round-global consistency census: the first value bits seen per
    /// initiator, and the set of initiators that ever contradicted them.
    /// O(1) per arrival; pool-completion consistency scans only walk the
    /// `dirty` initiators' slices (none, in an honest round).
    value_by_init: Vec<Option<u64>>,
    dirty: NodeSet,
    /// Completeness path sets, indexed by initiator then bucketed by
    /// value bits (almost always one bucket — more only under Byzantine
    /// equivocation): the `M'` sets Algorithm 2's `has_cover` checks read.
    /// An array index plus a spill-guarded probe per arrival — honest
    /// traffic never hashes its Byzantine-influenced value bits, and a
    /// distinct-value flood degrades to the seeded hash map, not to a
    /// linear scan.
    per_init_paths: Vec<SpillSlots<Vec<NodeSet>>>,
    /// Witness threads; empty until the first flood/start materializes
    /// them (rounds that only ever see late COMPLETE witnesses after
    /// firing never pay for construction).
    threads: Vec<ThreadState>,
    threads_ready: bool,
    trackers: Vec<CompletenessTracker>,
    // The maps below key on value bits or payload fingerprints — bytes a
    // Byzantine sender chooses — so they use the seeded default hasher.
    tracker_index: HashMap<(NodeSet, u64), usize>,
    /// (q, value-bits) → obligations waiting on new paths carrying it.
    waiters: HashMap<(NodeId, u64), Vec<(usize, usize)>>,
}

impl RoundCore {
    /// Creates the round state for node `me`. O(1): thread state is
    /// constructed lazily on first use, and even then holds only counters
    /// (the plan owns every mask).
    #[must_use]
    pub fn new(topo: &Topology, plan: &NodePlan) -> Self {
        RoundCore {
            me: plan.me,
            n: topo.graph().node_count(),
            f: topo.f(),
            started: false,
            fired: false,
            mset: MessageSet::new(),
            value_by_init: Vec::new(),
            dirty: NodeSet::EMPTY,
            per_init_paths: Vec::new(),
            threads: Vec::new(),
            threads_ready: false,
            trackers: Vec::new(),
            tracker_index: HashMap::new(),
            waiters: HashMap::new(),
        }
    }

    /// Materializes the witness threads (idempotent).
    fn ensure_threads(&mut self, plan: &NodePlan) {
        if self.threads_ready {
            return;
        }
        self.threads_ready = true;
        self.value_by_init = vec![None; plan.node_count()];
        self.per_init_paths = (0..plan.node_count()).map(|_| SpillSlots::new()).collect();
        self.threads = plan
            .guesses
            .iter()
            .enumerate()
            .map(|(i, g)| ThreadState {
                plan_idx: i,
                flood_remaining: g.flood_required,
                mc_fired: false,
                mc_dead: false,
                fra: g
                    .fra_witnesses
                    .iter()
                    .map(|_| FraState { done: false, by_fp: SpillSlots::new() })
                    .collect(),
                fra_remaining: g.fra_witnesses.len(),
                relevant_trackers: Vec::new(),
            })
            .collect();
    }

    /// Whether the node has begun this round (own value recorded).
    #[must_use]
    pub fn started(&self) -> bool {
        self.started
    }

    /// Whether Filter-and-Average already ran (the `nextround` flag).
    #[must_use]
    pub fn fired(&self) -> bool {
        self.fired
    }

    /// The accumulated message history `M_v` for this round.
    #[must_use]
    pub fn message_set(&self) -> &MessageSet {
        &self.mset
    }

    /// Begins the round with the node's current state value: records
    /// `(x, ⟨me⟩)` (the trivial path required by fullness).
    pub fn start(
        &mut self,
        value: f64,
        topo: &Topology,
        plan: &NodePlan,
        scratch: &mut WitnessScratch,
    ) -> Vec<RoundAction> {
        debug_assert!(!self.started, "round started twice");
        self.started = true;
        let mut actions = Vec::new();
        self.ingest(topo.index().trivial(self.me), value, topo, plan, &mut actions);
        self.check_progress(topo, plan, scratch, &mut actions);
        actions
    }

    /// Records a validated flood arrival. `stored` is the wire path
    /// extended with `me`. Returns `(fresh, actions)`; relays happen only
    /// when `fresh` (RedundantFlood's "first message with path p").
    pub fn add_flood(
        &mut self,
        stored: PathId,
        value: f64,
        topo: &Topology,
        plan: &NodePlan,
        scratch: &mut WitnessScratch,
    ) -> (bool, Vec<RoundAction>) {
        if self.mset.contains_path(stored) {
            return (false, Vec::new());
        }
        let mut actions = Vec::new();
        self.ingest(stored, value, topo, plan, &mut actions);
        self.check_progress(topo, plan, scratch, &mut actions);
        (true, actions)
    }

    fn ingest(
        &mut self,
        stored: PathId,
        value: f64,
        topo: &Topology,
        plan: &NodePlan,
        actions: &mut Vec<RoundAction>,
    ) {
        self.ensure_threads(plan);
        let index = topo.index();
        let init = index.init(stored);
        let bits = value.to_bits();
        let inserted = self.mset.insert(stored, value);
        debug_assert!(inserted, "caller checked freshness");

        // Round-global consistency census: one array slot per arrival.
        match self.value_by_init[init.index()] {
            None => self.value_by_init[init.index()] = Some(bits),
            Some(b) if b != bits => {
                self.dirty.insert(init);
            }
            Some(_) => {}
        }

        if !self.fired {
            // Feed the Completeness path set `M'` (Algorithm 2): one array
            // index and a spill-guarded value-bucket probe — honest floods
            // never hash their Byzantine-influenced value bits.
            let node_set = index.node_set(stored);
            self.per_init_paths[init.index()].entry_or_insert_with(bits, Vec::new).push(node_set);
            // Wake obligations waiting on (init, bits); an arrival pays the
            // waiter-map hash only while an obligation is actually pending.
            if !self.waiters.is_empty() {
                if let Some(waiting) = self.waiters.get(&(init, bits)) {
                    let waiting = waiting.clone();
                    let paths =
                        self.per_init_paths[init.index()].get(bits).map_or(&[][..], |b| &b[..]);
                    for (t_idx, o_idx) in waiting {
                        let tracker = &mut self.trackers[t_idx];
                        let ob = &mut tracker.obligations[o_idx];
                        debug_assert_eq!((ob.q, ob.xq_bits), (init, bits), "waiter key mismatch");
                        if ob.satisfied {
                            continue;
                        }
                        let allowed =
                            NodeSet::universe(self.n) - ob.component - NodeSet::singleton(self.me);
                        if !has_cover(paths, self.f, allowed) {
                            ob.satisfied = true;
                            tracker.pending -= 1;
                        }
                    }
                }
            }
        }

        // Maximal-Consistency census — continues after `fired` (other
        // nodes depend on our COMPLETE witnesses). One precomputed-mask
        // bit probe per thread; the consistency scan runs only at the
        // arrival that completes a pool, and only over the initiators the
        // global census flagged as equivocating.
        let (word, bit) = plan.mask_bit_of(stored);
        for thread in &mut self.threads {
            if thread.mc_fired || thread.mc_dead {
                continue;
            }
            let gp = &plan.guesses[thread.plan_idx];
            if gp.avoid_words[word] & bit == 0 {
                continue;
            }
            thread.flood_remaining -= 1;
            if thread.flood_remaining > 0 {
                continue;
            }
            // Pool complete: scan the dirty initiators' slices (clean
            // initiators cannot break consistency of a sub-history).
            let consistent = self
                .dirty
                .iter()
                .all(|q| plan.initiator_consistent(thread.plan_idx, q, &self.mset));
            if consistent {
                thread.mc_fired = true;
                let payload = Arc::new(CompletePayload::from_entries(
                    plan.gather_avoiding(thread.plan_idx, &self.mset),
                ));
                actions.push(RoundAction::FloodComplete { guess: gp.guess, payload });
            } else {
                thread.mc_dead = true;
            }
        }
    }

    /// Records a FIFO-received `COMPLETE` (including the node's own, via
    /// the trivial path). `delivery_path` must be a validated simple path
    /// ending at this node — the validation boundary guarantees it for
    /// wire traffic.
    #[allow(clippy::too_many_arguments)]
    pub fn add_fifo_delivery(
        &mut self,
        initiator: NodeId,
        delivery_path: PathId,
        suspects: NodeSet,
        payload: &Arc<CompletePayload>,
        fingerprint: u64,
        topo: &Topology,
        plan: &NodePlan,
        scratch: &mut WitnessScratch,
    ) -> Vec<RoundAction> {
        let mut actions = Vec::new();
        if self.fired {
            return actions;
        }
        self.ensure_threads(plan);
        let tracker_idx = self.obtain_tracker(suspects, payload, fingerprint, topo);
        let path_nodes = topo.index().node_set(delivery_path);
        let slot = plan.fra_slot_of(delivery_path);
        debug_assert!(slot.is_some(), "delivery paths are simple paths ending at me");

        for thread in &mut self.threads {
            let gp = &plan.guesses[thread.plan_idx];
            if !path_nodes.is_subset(gp.reach) {
                continue;
            }
            // Verify-relevance (Algorithm 1 line 24).
            if !thread.relevant_trackers.contains(&tracker_idx) {
                thread.relevant_trackers.push(tracker_idx);
            }
            // FIFO-Receive-All progress (line 12) — only for this guess.
            if suspects != gp.guess {
                continue;
            }
            let (Some(slot), Ok(w_idx)) =
                (slot, gp.fra_witnesses.binary_search_by_key(&initiator, |w| w.c))
            else {
                continue;
            };
            let state = &mut thread.fra[w_idx];
            if state.done {
                continue;
            }
            let progress = state.by_fp.entry_or_insert_with(fingerprint, || FpProgress {
                remaining: gp.fra_witnesses[w_idx].required,
                seen: scratch.take_column(plan.fra_slot_words),
            });
            let (w, bit) = (slot / 64, 1u64 << (slot % 64));
            if progress.seen[w] & bit != 0 {
                continue; // duplicate (path, fingerprint): the bitmap is the dedup
            }
            progress.seen[w] |= bit;
            scratch.fra_marks += 1;
            if progress.remaining > 0 {
                progress.remaining -= 1;
                if progress.remaining == 0 {
                    state.done = true;
                    thread.fra_remaining -= 1;
                    scratch.witness_completions += 1;
                    for (_, fp) in state.by_fp.take_entries() {
                        scratch.recycle(fp.seen);
                    }
                }
            }
        }
        self.check_progress(topo, plan, scratch, &mut actions);
        actions
    }

    fn obtain_tracker(
        &mut self,
        suspects: NodeSet,
        payload: &Arc<CompletePayload>,
        fingerprint: u64,
        topo: &Topology,
    ) -> usize {
        if let Some(&idx) = self.tracker_index.get(&(suspects, fingerprint)) {
            return idx;
        }
        let consistent = payload.is_consistent(topo.index());
        let mut tracker = CompletenessTracker {
            consistent,
            impossible: false,
            pending: 0,
            obligations: Vec::new(),
        };
        let idx = self.trackers.len();
        if consistent {
            for &(component, q) in topo.completeness_obligations(suspects) {
                let Some(xq) = payload.value_of(q, topo.index()) else {
                    tracker.impossible = true;
                    continue;
                };
                let xq_bits = xq.to_bits();
                let allowed = NodeSet::universe(self.n) - component - NodeSet::singleton(self.me);
                let paths = self
                    .per_init_paths
                    .get(q.index())
                    .and_then(|buckets| buckets.get(xq_bits))
                    .map_or(&[][..], |b| &b[..]);
                let already = !has_cover(paths, self.f, allowed);
                let o_idx = tracker.obligations.len();
                tracker.obligations.push(Obligation { component, q, xq_bits, satisfied: already });
                if !already {
                    tracker.pending += 1;
                    self.waiters.entry((q, xq_bits)).or_default().push((idx, o_idx));
                }
            }
        }
        self.trackers.push(tracker);
        self.tracker_index.insert((suspects, fingerprint), idx);
        idx
    }

    fn check_progress(
        &mut self,
        topo: &Topology,
        plan: &NodePlan,
        scratch: &mut WitnessScratch,
        actions: &mut Vec<RoundAction>,
    ) {
        if self.fired || !self.started {
            return;
        }
        for t in 0..self.threads.len() {
            let thread = &self.threads[t];
            if thread.fra_remaining != 0 {
                continue;
            }
            if thread.relevant_trackers.iter().any(|&t| self.trackers[t].blocking()) {
                continue;
            }
            let winner = thread.plan_idx;
            // Verify passed: Filter-and-Average, once per round.
            let outcome = filter_and_average(&self.mset, self.f, self.me, self.n, topo.index())
                .expect("own trivial path keeps the trimmed vector non-empty");
            self.fired = true;
            // FIFO-Receive-All bookkeeping is dead once the round fired
            // (deliveries return early): every in-flight fingerprint
            // column goes back to the node's pool, not just the ones
            // whose witness completed.
            for thread in &mut self.threads {
                for state in &mut thread.fra {
                    for (_, fp) in state.by_fp.take_entries() {
                        scratch.recycle(fp.seen);
                    }
                }
            }
            actions.push(RoundAction::Advance { guess: plan.guesses[winner].guess, outcome });
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{clique_topo, pid};

    fn id(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn setup(n: usize, f: usize) -> (Topology, NodePlan) {
        let topo = clique_topo(n, f);
        let plan = NodePlan::new(&topo, id(0));
        (topo, plan)
    }

    #[test]
    fn plan_excludes_self_from_guesses() {
        let (_, plan) = setup(4, 1);
        assert_eq!(plan.me(), id(0));
        // ∅ plus the three singletons not containing node 0.
        assert_eq!(plan.guesses().len(), 4);
        assert!(plan.guesses().iter().all(|g| !g.guess.contains(id(0))));
    }

    #[test]
    fn plan_counts_required_paths() {
        let (topo, plan) = setup(4, 1);
        let pool = topo.required_paths_to(id(0)).len();
        let empty_guess = plan.guesses().iter().find(|g| g.guess.is_empty()).unwrap();
        assert_eq!(empty_guess.flood_required, pool);
        // A singleton guess shrinks the requirement strictly.
        let singleton = plan.guesses().iter().find(|g| g.guess.len() == 1).unwrap();
        assert!(singleton.flood_required < pool);
        // FRA witnesses = everyone outside the guess (clique reach).
        assert_eq!(empty_guess.fra_witnesses().len(), 4);
        assert_eq!(singleton.fra_witnesses().len(), 3);
    }

    #[test]
    fn plan_masks_match_counter_reference() {
        // The mask popcounts must agree with the pre-mask reference plan's
        // hash-map census on every guess and witness.
        for (n, f) in [(3, 0), (4, 1), (5, 1)] {
            let topo = clique_topo(n, f);
            for v in topo.graph().nodes() {
                let plan = NodePlan::new(&topo, v);
                let model = reference::NodePlan::new(&topo, v);
                assert_eq!(plan.guesses().len(), model.guesses().len());
                for (gp, mp) in plan.guesses().iter().zip(model.guesses()) {
                    assert_eq!(gp.guess, mp.guess);
                    assert_eq!(gp.reach, mp.reach);
                    assert_eq!(gp.flood_required, mp.flood_required, "census({:?})", gp.guess);
                    let got: Vec<(NodeId, usize)> =
                        gp.fra_witnesses().iter().map(|w| (w.c, w.required)).collect();
                    assert_eq!(got, mp.fra_required, "FRA census({:?})", gp.guess);
                }
            }
        }
    }

    #[test]
    fn fra_masks_mark_in_reach_paths() {
        let (topo, plan) = setup(4, 1);
        let index = topo.index();
        let simple = topo.simple_paths_to(id(0));
        for gp in plan.guesses() {
            for w in gp.fra_witnesses() {
                for (s, &p) in simple.iter().enumerate() {
                    let bit = w.mask()[s / 64] & (1u64 << (s % 64)) != 0;
                    let expected = index.init(p) == w.c && index.is_within(p, gp.reach);
                    assert_eq!(bit, expected, "slot {s} in mask of ({:?}, {})", gp.guess, w.c);
                }
            }
        }
    }

    #[test]
    fn mc_status_matches_definitions() {
        let (topo, plan) = setup(3, 0);
        let index = topo.index();
        let mut m = MessageSet::new();
        // Empty set: vacuously consistent, not full.
        let st = plan.mc_status(0, &m);
        assert!(!st.full);
        assert!(st.consistent);
        // Full pool with per-initiator values: full and consistent.
        for &p in topo.required_paths_to(id(0)) {
            m.insert(p, index.init(p).index() as f64);
        }
        assert_eq!(plan.mc_status(0, &m), McStatus { full: true, consistent: true });
        assert!(m.is_consistent(index));
        // An equivocating history: full but inconsistent.
        let mut bad = MessageSet::new();
        for &p in topo.required_paths_to(id(0)) {
            bad.insert(p, index.node_count(p) as f64);
        }
        let st = plan.mc_status(0, &bad);
        assert!(st.full);
        assert!(!st.consistent);
        assert!(!bad.is_consistent(index));
    }

    #[test]
    fn gather_matches_exclusion_payload() {
        let (topo, plan) = setup(4, 1);
        let index = topo.index();
        let mut m = MessageSet::new();
        for &p in topo.required_paths_to(id(0)) {
            m.insert(p, index.init(p).index() as f64);
        }
        for (i, gp) in plan.guesses().iter().enumerate() {
            let gathered = CompletePayload::from_entries(plan.gather_avoiding(i, &m));
            let excluded = CompletePayload::from_message_set(&m.exclusion(gp.guess, index));
            assert_eq!(gathered, excluded, "guess {:?}", gp.guess);
            assert_eq!(gathered.fingerprint(), excluded.fingerprint());
        }
    }

    #[test]
    fn start_records_trivial_path() {
        let (topo, plan) = setup(4, 1);
        let mut core = RoundCore::new(&topo, &plan);
        let mut scratch = WitnessScratch::new();
        assert!(!core.started());
        let actions = core.start(2.5, &topo, &plan, &mut scratch);
        assert!(core.started());
        assert!(actions.is_empty(), "one value cannot complete a clique's pool");
        assert_eq!(core.message_set().value_on_path(topo.index().trivial(id(0))), Some(2.5));
    }

    #[test]
    fn thread_state_is_lazy_until_first_use() {
        let (topo, plan) = setup(4, 1);
        let mut core = RoundCore::new(&topo, &plan);
        assert!(core.threads.is_empty(), "construction allocates no thread state");
        // A fired round receiving a late COMPLETE never materializes.
        core.fired = true;
        let payload = Arc::new(CompletePayload::from_message_set(&MessageSet::new()));
        let fp = payload.fingerprint();
        let mut scratch = WitnessScratch::new();
        core.add_fifo_delivery(
            id(0),
            topo.index().trivial(id(0)),
            NodeSet::EMPTY,
            &payload,
            fp,
            &topo,
            &plan,
            &mut scratch,
        );
        assert!(core.threads.is_empty(), "late COMPLETEs skip thread construction");
        // The first flood materializes.
        core.fired = false;
        core.start(1.0, &topo, &plan, &mut scratch);
        assert_eq!(core.threads.len(), plan.guesses().len());
    }

    #[test]
    fn duplicate_flood_is_not_fresh() {
        let (topo, plan) = setup(4, 1);
        let mut core = RoundCore::new(&topo, &plan);
        let mut scratch = WitnessScratch::new();
        core.start(0.0, &topo, &plan, &mut scratch);
        let p = pid(&topo, &[1, 0]);
        let (fresh, _) = core.add_flood(p, 1.0, &topo, &plan, &mut scratch);
        assert!(fresh);
        let (fresh, _) = core.add_flood(p, 9.0, &topo, &plan, &mut scratch);
        assert!(!fresh, "same path must not relay twice");
    }

    #[test]
    fn maximal_consistency_fires_when_pool_complete() {
        // Feed node 0 every pool path with consistent per-initiator values.
        let (topo, plan) = setup(3, 0);
        // f = 0: single guess (the empty set), pool = all redundant paths.
        let mut core = RoundCore::new(&topo, &plan);
        let mut scratch = WitnessScratch::new();
        let mut actions = core.start(0.5, &topo, &plan, &mut scratch);
        let values = [0.5, 1.0, 2.0];
        for &path in topo.required_paths_to(id(0)) {
            if topo.index().is_trivial(path) {
                continue; // own trivial path already in
            }
            let v = values[topo.index().init(path).index()];
            let (_, mut acts) = core.add_flood(path, v, &topo, &plan, &mut scratch);
            actions.append(&mut acts);
        }
        let completes: Vec<_> =
            actions.iter().filter(|a| matches!(a, RoundAction::FloodComplete { .. })).collect();
        assert_eq!(completes.len(), 1, "single guess fires exactly once");
        match completes[0] {
            RoundAction::FloodComplete { guess, payload } => {
                assert!(guess.is_empty());
                assert_eq!(payload.len(), topo.required_paths_to(id(0)).len());
                assert!(payload.is_consistent(topo.index()));
            }
            RoundAction::Advance { .. } => unreachable!(),
        }
    }

    #[test]
    fn inconsistent_values_block_a_guess() {
        let (topo, plan) = setup(3, 0);
        let mut core = RoundCore::new(&topo, &plan);
        let mut scratch = WitnessScratch::new();
        core.start(0.5, &topo, &plan, &mut scratch);
        let mut fired = Vec::new();
        for &path in topo.required_paths_to(id(0)) {
            if topo.index().is_trivial(path) {
                continue;
            }
            // Value depends on the whole path, so initiators equivocate.
            let v = topo.index().node_count(path) as f64;
            let (_, acts) = core.add_flood(path, v, &topo, &plan, &mut scratch);
            fired.extend(acts);
        }
        assert!(
            fired.iter().all(|a| !matches!(a, RoundAction::FloodComplete { .. })),
            "equivocation must block Maximal-Consistency"
        );
        assert!(core.threads.iter().any(|t| t.mc_dead), "completed-but-inconsistent pool is dead");
    }

    #[test]
    fn full_round_on_tiny_clique_advances() {
        // f = 0 on K3: feed all floods, then deliver every node's COMPLETE
        // over every simple path — the round must advance.
        let (topo, plan) = setup(3, 0);
        let mut core = RoundCore::new(&topo, &plan);
        let mut scratch = WitnessScratch::new();
        let mut all_actions = core.start(1.0, &topo, &plan, &mut scratch);
        let values = [1.0, 2.0, 3.0];
        for &path in topo.required_paths_to(id(0)) {
            if topo.index().is_trivial(path) {
                continue;
            }
            let value = values[topo.index().init(path).index()];
            let (_, acts) = core.add_flood(path, value, &topo, &plan, &mut scratch);
            all_actions.extend(acts);
        }
        // Own COMPLETE fired; simulate the self-delivery.
        let own = all_actions
            .iter()
            .find_map(|a| match a {
                RoundAction::FloodComplete { payload, .. } => Some(Arc::clone(payload)),
                RoundAction::Advance { .. } => None,
            })
            .expect("own MC fired");
        let fp = own.fingerprint();
        let mut acts = core.add_fifo_delivery(
            id(0),
            topo.index().trivial(id(0)),
            NodeSet::EMPTY,
            &own,
            fp,
            &topo,
            &plan,
            &mut scratch,
        );
        all_actions.append(&mut acts);

        // Peers 1 and 2 send the same COMPLETE (their view: same values on
        // all their pool paths). Build each peer's payload from its pool.
        for c in [id(1), id(2)] {
            let mut m = MessageSet::new();
            for &path in topo.required_paths_to(c) {
                m.insert(path, values[topo.index().init(path).index()]);
            }
            let payload = Arc::new(CompletePayload::from_message_set(&m));
            let fp = payload.fingerprint();
            // Deliver over every simple (c, 0)-path.
            for &p in topo.simple_paths_to(id(0)) {
                if topo.index().init(p) != c || topo.index().is_trivial(p) {
                    continue;
                }
                let mut acts = core.add_fifo_delivery(
                    c,
                    p,
                    NodeSet::EMPTY,
                    &payload,
                    fp,
                    &topo,
                    &plan,
                    &mut scratch,
                );
                all_actions.append(&mut acts);
            }
        }
        let advance = all_actions.iter().find_map(|a| match a {
            RoundAction::Advance { outcome, .. } => Some(*outcome),
            RoundAction::FloodComplete { .. } => None,
        });
        let outcome = advance.expect("round must advance");
        assert!(core.fired());
        // f = 0: no trimming; midpoint of 1 and 3.
        assert_eq!(outcome.value, 2.0);
        // Completed witnesses returned their fingerprint columns, and
        // firing drained every in-flight column back to the pool.
        assert!(scratch.pooled() > 0, "done witnesses recycle their columns");
        assert!(
            core.threads.iter().all(|t| t.fra.iter().all(|s| s.by_fp.is_empty())),
            "firing returns every in-flight FRA column to the pool"
        );
    }

    #[test]
    fn inconsistent_complete_payloads_never_block_verify() {
        // Algorithm 1 line 24: only *consistent* M_c impose Completeness
        // conjuncts; a tampered, self-contradicting payload is ignored.
        let (topo, plan) = setup(4, 1);
        let mut core = RoundCore::new(&topo, &plan);
        let mut scratch = WitnessScratch::new();
        core.start(1.0, &topo, &plan, &mut scratch);
        let mut m = MessageSet::new();
        m.insert(pid(&topo, &[1, 0]), 3.0);
        m.insert(pid(&topo, &[1, 2, 0]), 9.0); // equivocation
        let payload = Arc::new(CompletePayload::from_message_set(&m));
        assert!(!payload.is_consistent(topo.index()));
        let fp = payload.fingerprint();
        core.add_fifo_delivery(
            id(1),
            pid(&topo, &[1, 0]),
            NodeSet::singleton(id(2)),
            &payload,
            fp,
            &topo,
            &plan,
            &mut scratch,
        );
        assert_eq!(core.trackers.len(), 1);
        assert!(!core.trackers[0].blocking(), "inconsistent payloads are skipped");
    }

    #[test]
    fn missing_source_value_blocks_forever() {
        // A consistent payload that lacks a source-component value can
        // never pass Completeness: M' stays empty, the empty f-cover
        // exists, output is false (Algorithm 2).
        let (topo, plan) = setup(4, 1);
        let mut core = RoundCore::new(&topo, &plan);
        let mut scratch = WitnessScratch::new();
        core.start(1.0, &topo, &plan, &mut scratch);
        // Payload with a single entry from node 1 — nodes 2 and 3 are in
        // source components of some (F_u, F_w) pair but absent here.
        let mut m = MessageSet::new();
        m.insert(pid(&topo, &[1, 0]), 3.0);
        let payload = Arc::new(CompletePayload::from_message_set(&m));
        let fp = payload.fingerprint();
        core.add_fifo_delivery(
            id(1),
            pid(&topo, &[1, 0]),
            NodeSet::singleton(id(2)),
            &payload,
            fp,
            &topo,
            &plan,
            &mut scratch,
        );
        assert_eq!(core.trackers.len(), 1);
        assert!(core.trackers[0].impossible);
        assert!(core.trackers[0].blocking());
        // Feeding matching floods does not unblock an impossible tracker.
        for &path in topo.required_paths_to(id(0)) {
            if topo.index().is_trivial(path) {
                continue;
            }
            let _ = core.add_flood(path, 3.0, &topo, &plan, &mut scratch);
        }
        assert!(core.trackers[0].blocking());
    }

    #[test]
    fn trackers_deduplicate_by_suspects_and_content() {
        let (topo, plan) = setup(4, 1);
        let mut core = RoundCore::new(&topo, &plan);
        let mut scratch = WitnessScratch::new();
        core.start(1.0, &topo, &plan, &mut scratch);
        let mut m = MessageSet::new();
        m.insert(pid(&topo, &[1, 0]), 3.0);
        let payload = Arc::new(CompletePayload::from_message_set(&m));
        let fp = payload.fingerprint();
        for p in [pid(&topo, &[1, 0]), pid(&topo, &[1, 2, 0])] {
            core.add_fifo_delivery(
                id(1),
                p,
                NodeSet::singleton(id(3)),
                &payload,
                fp,
                &topo,
                &plan,
                &mut scratch,
            );
        }
        assert_eq!(core.trackers.len(), 1, "same (F_u, content) → one tracker");
        // A different suspect set is a distinct Completeness instance.
        core.add_fifo_delivery(
            id(1),
            pid(&topo, &[1, 0]),
            NodeSet::singleton(id(2)),
            &payload,
            fp,
            &topo,
            &plan,
            &mut scratch,
        );
        assert_eq!(core.trackers.len(), 2);
    }

    #[test]
    fn spilled_slots_stay_correct_under_distinct_key_floods() {
        // A Byzantine peer streaming distinct values / payload
        // fingerprints pushes the per-initiator value buckets and the
        // per-witness fingerprint slots past their linear-probe budget
        // into the hash index; behavior must not change.
        let (topo, plan) = setup(4, 1);
        let index = topo.index();
        let mut core = RoundCore::new(&topo, &plan);
        let mut scratch = WitnessScratch::new();
        core.start(1.0, &topo, &plan, &mut scratch);
        // Distinct value per flood path from initiator 1 (spills the
        // value buckets; everything from node 1 is inconsistent).
        let mut k = 0;
        for &path in topo.required_paths_to(id(0)) {
            if index.is_trivial(path) || index.init(path) != id(1) {
                continue;
            }
            k += 1;
            let (fresh, _) = core.add_flood(path, f64::from(k), &topo, &plan, &mut scratch);
            assert!(fresh);
        }
        assert!(k > SpillSlots::<()>::SPILL as i32, "enough distinct values to spill");
        let buckets = &core.per_init_paths[1];
        assert!(buckets.index.is_some(), "value buckets spilled to the hash index");
        for v in 1..=k {
            let paths = buckets.get(f64::from(v).to_bits()).expect("bucket per distinct value");
            assert_eq!(paths.len(), 1);
        }
        assert!(core.dirty.contains(id(1)), "distinct values flag the initiator dirty");

        // Distinct payload fingerprint per COMPLETE from witness 1 over
        // one delivery path (spills the fingerprint slots; none completes).
        let delivery = pid(&topo, &[1, 0]);
        for fp in 0..16u64 {
            let mut m = MessageSet::new();
            m.insert(delivery, fp as f64);
            let payload = Arc::new(CompletePayload::from_message_set(&m));
            core.add_fifo_delivery(
                id(1),
                delivery,
                NodeSet::EMPTY,
                &payload,
                payload.fingerprint(),
                &topo,
                &plan,
                &mut scratch,
            );
        }
        let empty_thread =
            core.threads.iter().find(|t| plan.guesses()[t.plan_idx].guess.is_empty()).unwrap();
        let w1 = plan.guesses()[empty_thread.plan_idx]
            .fra_witnesses()
            .iter()
            .position(|w| w.c == id(1))
            .unwrap();
        let state = &empty_thread.fra[w1];
        assert!(!state.done, "one path per fingerprint cannot complete the witness");
        assert!(state.by_fp.index.is_some(), "fingerprint slots spilled to the hash index");
        assert!(state.by_fp.get(0).is_none(), "only seen fingerprints have slots");
    }

    #[test]
    fn mc_detection_continues_after_fired() {
        // After the round fires, a still-pending guess whose pool completes
        // must still emit FloodComplete (peer liveness).
        let (topo, plan) = setup(3, 1);
        let mut core = RoundCore::new(&topo, &plan);
        let mut scratch = WitnessScratch::new();
        core.fired = true; // simulate an already-advanced round
        core.started = true;
        let mut actions = Vec::new();
        core.ingest(topo.index().trivial(id(0)), 1.0, &topo, &plan, &mut actions);
        for &path in topo.required_paths_to(id(0)) {
            if topo.index().is_trivial(path) {
                continue;
            }
            let (fresh, acts) = core.add_flood(path, 1.0, &topo, &plan, &mut scratch);
            assert!(fresh);
            actions.extend(acts);
        }
        assert!(
            actions.iter().any(|a| matches!(a, RoundAction::FloodComplete { .. })),
            "witness flooding must survive round advancement"
        );
        assert!(
            !actions.iter().any(|a| matches!(a, RoundAction::Advance { .. })),
            "a fired round cannot advance again"
        );
    }

    /// Always-on equivalence properties: the mask-batched [`RoundCore`]
    /// and the counter-based [`reference::RoundCore`] must emit identical
    /// action streams under random flood/COMPLETE interleavings. The
    /// heavyweight generated-sequence harness lives in
    /// `tests/differential_witness.rs` (feature `reference-witness`);
    /// these run on every plain `cargo test`.
    mod equivalence {
        use super::super::{reference, NodePlan, RoundAction, RoundCore, WitnessScratch};
        use crate::config::FloodMode;
        use crate::message_set::{CompletePayload, MessageSet};
        use crate::precompute::Topology;
        use crate::test_support::topo_of;
        use dbac_graph::{generators, NodeId, NodeSet};
        use proptest::prelude::*;
        use std::sync::{Arc, OnceLock};

        fn catalog() -> &'static Vec<Topology> {
            static CATALOG: OnceLock<Vec<Topology>> = OnceLock::new();
            CATALOG.get_or_init(|| {
                vec![
                    topo_of(generators::clique(3), 0, FloodMode::Redundant),
                    topo_of(generators::clique(4), 1, FloodMode::Redundant),
                    topo_of(
                        generators::two_cliques_bridged(3, &[(0, 0)], &[(2, 2)]),
                        1,
                        FloodMode::Redundant,
                    ),
                ]
            })
        }

        fn actions_equal(a: &[RoundAction], b: &[RoundAction]) -> bool {
            a.len() == b.len()
                && a.iter().zip(b).all(|(x, y)| match (x, y) {
                    (
                        RoundAction::FloodComplete { guess: g1, payload: p1 },
                        RoundAction::FloodComplete { guess: g2, payload: p2 },
                    ) => g1 == g2 && p1 == p2 && p1.fingerprint() == p2.fingerprint(),
                    (
                        RoundAction::Advance { guess: g1, outcome: o1 },
                        RoundAction::Advance { guess: g2, outcome: o2 },
                    ) => g1 == g2 && o1 == o2,
                    _ => false,
                })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// Random flood orders and values produce identical action
            /// streams and message sets in both state machines.
            #[test]
            fn flood_sequences_agree(
                topo_sel in 0usize..3,
                words in prop::collection::vec(0u64..u64::MAX, 1..48),
            ) {
                let t = &catalog()[topo_sel];
                let me = NodeId::new(0);
                let plan = NodePlan::new(t, me);
                let model_plan = reference::NodePlan::new(t, me);
                let mut core = RoundCore::new(t, &plan);
                let mut model = reference::RoundCore::new(t, &model_plan);
                let mut scratch = WitnessScratch::new();
                let pool = t.required_paths_to(me);
                let a0 = core.start(0.5, t, &plan, &mut scratch);
                let b0 = model.start(0.5, t, &model_plan);
                prop_assert!(actions_equal(&a0, &b0), "start diverged");
                for &w in &words {
                    let p = pool[(w % pool.len() as u64) as usize];
                    if t.index().is_trivial(p) {
                        continue;
                    }
                    // A small value alphabet keyed off the initiator, with
                    // occasional equivocation.
                    let init = t.index().init(p).index() as f64;
                    let v = if w & 7 == 0 { -init - 1.0 } else { init };
                    let (f1, a) = core.add_flood(p, v, t, &plan, &mut scratch);
                    let (f2, b) = model.add_flood(p, v, t, &model_plan);
                    prop_assert_eq!(f1, f2, "freshness diverged");
                    prop_assert!(actions_equal(&a, &b), "flood actions diverged");
                }
                prop_assert_eq!(core.message_set(), model.message_set());
                prop_assert_eq!(core.fired(), model.fired());
            }

            /// Random COMPLETE deliveries (varying paths, suspects and
            /// payload contents) keep the two state machines in lockstep
            /// through to Verify.
            #[test]
            fn delivery_sequences_agree(
                topo_sel in 0usize..3,
                words in prop::collection::vec(0u64..u64::MAX, 1..40),
            ) {
                let t = &catalog()[topo_sel];
                let me = NodeId::new(0);
                let plan = NodePlan::new(t, me);
                let model_plan = reference::NodePlan::new(t, me);
                let mut core = RoundCore::new(t, &plan);
                let mut model = reference::RoundCore::new(t, &model_plan);
                let mut scratch = WitnessScratch::new();
                let a0 = core.start(1.0, t, &plan, &mut scratch);
                let b0 = model.start(1.0, t, &model_plan);
                prop_assert!(actions_equal(&a0, &b0));
                // A small pool of payloads: per-initiator-consistent,
                // inconsistent, and empty.
                let payloads: Vec<Arc<CompletePayload>> = {
                    let mut out = Vec::new();
                    for (k, c) in t.graph().nodes().enumerate() {
                        let mut m = MessageSet::new();
                        for &p in t.required_paths_to(c) {
                            m.insert(p, t.index().init(p).index() as f64 + k as f64);
                        }
                        out.push(Arc::new(CompletePayload::from_message_set(&m)));
                    }
                    let mut bad = MessageSet::new();
                    for (i, &p) in t.required_paths_to(me).iter().enumerate().take(4) {
                        bad.insert(p, i as f64);
                    }
                    out.push(Arc::new(CompletePayload::from_message_set(&bad)));
                    out.push(Arc::new(CompletePayload::from_message_set(&MessageSet::new())));
                    out
                };
                let simple = t.simple_paths_to(me);
                let guesses: Vec<NodeSet> = t.guesses().to_vec();
                for &w in &words {
                    let p = simple[(w % simple.len() as u64) as usize];
                    let suspects = guesses[((w >> 16) % guesses.len() as u64) as usize];
                    let payload = &payloads[((w >> 32) % payloads.len() as u64) as usize];
                    let init = t.index().init(p);
                    if suspects.contains(init) {
                        continue; // validation would drop it
                    }
                    let fp = payload.fingerprint();
                    let a = core.add_fifo_delivery(
                        init, p, suspects, payload, fp, t, &plan, &mut scratch,
                    );
                    let b = model.add_fifo_delivery(
                        init, p, suspects, payload, fp, t, &model_plan,
                    );
                    prop_assert!(actions_equal(&a, &b), "delivery actions diverged");
                    prop_assert_eq!(core.fired(), model.fired());
                }
            }
        }
    }
}
