//! FIFO flooding and FIFO reception (Appendix F).
//!
//! Each node keeps one monotone FIFO counter shared by all of its parallel
//! threads; every `COMPLETE` it initiates carries the next counter value
//! and travels along **all simple paths**. A receiver *FIFO-receives* a
//! message with counter `k` through path `p` once it holds counters
//! `1..k-1` from the same initiator through the same path — exactly the
//! ordering a fully nonfaulty path preserves.

use crate::message::{ProtocolMsg, Round};
use crate::message_set::CompletePayload;
use crate::precompute::Topology;
use dbac_graph::{NodeId, NodeSet, Path};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// The initial FIFO flood of a `COMPLETE` message (Algorithm 1 line 11).
#[must_use]
pub fn initial_complete(
    topo: &Topology,
    me: NodeId,
    round: Round,
    suspects: NodeSet,
    payload: &Arc<CompletePayload>,
    seq: u64,
) -> Vec<(NodeId, ProtocolMsg)> {
    let path = Path::single(me);
    topo.graph()
        .out_neighbors(me)
        .iter()
        .map(|w| {
            (
                w,
                ProtocolMsg::Complete {
                    round,
                    suspects,
                    payload: Arc::clone(payload),
                    path: path.clone(),
                    seq,
                },
            )
        })
        .collect()
}

/// Forwards for a freshly received `COMPLETE` whose stored path ends at
/// `me`: relayed to each `w` keeping the path simple.
#[must_use]
pub fn complete_forwards(
    topo: &Topology,
    me: NodeId,
    round: Round,
    suspects: NodeSet,
    payload: &Arc<CompletePayload>,
    stored: &Path,
    seq: u64,
) -> Vec<(NodeId, ProtocolMsg)> {
    debug_assert_eq!(stored.ter(), me);
    let mut out = Vec::new();
    for w in topo.graph().out_neighbors(me).iter() {
        let Ok(extended) = stored.extended(w) else {
            continue;
        };
        if extended.is_simple() {
            out.push((
                w,
                ProtocolMsg::Complete {
                    round,
                    suspects,
                    payload: Arc::clone(payload),
                    path: stored.clone(),
                    seq,
                },
            ));
        }
    }
    out
}

/// A message that became FIFO-received and is ready for the witness logic.
#[derive(Clone, Debug)]
pub struct FifoDelivery {
    /// The initiator `c` (the first node of the delivery path).
    pub initiator: NodeId,
    /// The full delivery path (ends at the local node).
    pub path: Path,
    /// Round tag of the `COMPLETE`.
    pub round: Round,
    /// The suspect set `F` in `COMPLETE(F)`.
    pub suspects: NodeSet,
    /// The payload snapshot.
    pub payload: Arc<CompletePayload>,
    /// Cached payload fingerprint.
    pub fingerprint: u64,
}

/// Per-(initiator, path) reassembly buffers implementing FIFO reception.
#[derive(Debug, Default)]
pub struct FifoReceiver {
    channels: HashMap<(NodeId, Path), Channel>,
}

#[derive(Debug)]
struct Channel {
    next: u64,
    buffer: BTreeMap<u64, Vec<(Round, NodeSet, Arc<CompletePayload>, u64)>>,
}

impl FifoReceiver {
    /// Creates an empty receiver.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Accepts a validated `COMPLETE` arrival and returns every message
    /// that became FIFO-received as a result (possibly several, when a gap
    /// closes; possibly none, when earlier counters are still missing).
    pub fn accept(
        &mut self,
        path: &Path,
        seq: u64,
        round: Round,
        suspects: NodeSet,
        payload: Arc<CompletePayload>,
    ) -> Vec<FifoDelivery> {
        let initiator = path.init();
        let channel = self
            .channels
            .entry((initiator, path.clone()))
            .or_insert_with(|| Channel { next: 1, buffer: BTreeMap::new() });
        if seq >= channel.next {
            let fp = payload.fingerprint();
            let slot = channel.buffer.entry(seq).or_default();
            // Exact duplicates (Byzantine replays) are dropped.
            if !slot.iter().any(|(r, s, _, f)| *r == round && *s == suspects && *f == fp) {
                slot.push((round, suspects, payload, fp));
            }
        }
        let mut out = Vec::new();
        while let Some(batch) = channel.buffer.remove(&channel.next) {
            for (round, suspects, payload, fingerprint) in batch {
                out.push(FifoDelivery {
                    initiator,
                    path: path.clone(),
                    round,
                    suspects,
                    payload,
                    fingerprint,
                });
            }
            channel.next += 1;
        }
        out
    }

    /// Number of open (initiator, path) channels.
    #[must_use]
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message_set::MessageSet;

    fn payload(tag: f64) -> Arc<CompletePayload> {
        let mut m = MessageSet::new();
        m.insert(Path::from_indices(&[1, 0]).unwrap(), tag);
        Arc::new(CompletePayload::from_message_set(&m))
    }

    fn p(idx: &[usize]) -> Path {
        Path::from_indices(idx).unwrap()
    }

    #[test]
    fn in_order_messages_deliver_immediately() {
        let mut rx = FifoReceiver::new();
        let d1 = rx.accept(&p(&[1, 0]), 1, 0, NodeSet::EMPTY, payload(1.0));
        assert_eq!(d1.len(), 1);
        assert_eq!(d1[0].initiator, dbac_graph::NodeId::new(1));
        let d2 = rx.accept(&p(&[1, 0]), 2, 0, NodeSet::EMPTY, payload(2.0));
        assert_eq!(d2.len(), 1);
    }

    #[test]
    fn gaps_hold_messages_back() {
        let mut rx = FifoReceiver::new();
        let d = rx.accept(&p(&[1, 0]), 2, 0, NodeSet::EMPTY, payload(2.0));
        assert!(d.is_empty(), "seq 1 missing");
        let d = rx.accept(&p(&[1, 0]), 3, 1, NodeSet::EMPTY, payload(3.0));
        assert!(d.is_empty());
        let d = rx.accept(&p(&[1, 0]), 1, 0, NodeSet::EMPTY, payload(1.0));
        assert_eq!(d.len(), 3, "gap closes, everything drains in order");
        let rounds: Vec<u32> = d.iter().map(|x| x.round).collect();
        assert_eq!(rounds, vec![0, 0, 1]);
    }

    #[test]
    fn channels_are_per_path() {
        let mut rx = FifoReceiver::new();
        let d = rx.accept(&p(&[1, 0]), 1, 0, NodeSet::EMPTY, payload(1.0));
        assert_eq!(d.len(), 1);
        // Same initiator, different path: independent channel, needs seq 1.
        let d = rx.accept(&p(&[1, 2, 0]), 2, 0, NodeSet::EMPTY, payload(2.0));
        assert!(d.is_empty());
        assert_eq!(rx.channel_count(), 2);
    }

    #[test]
    fn exact_duplicates_are_dropped_but_conflicts_kept() {
        let mut rx = FifoReceiver::new();
        rx.accept(&p(&[1, 0]), 2, 0, NodeSet::EMPTY, payload(9.0));
        rx.accept(&p(&[1, 0]), 2, 0, NodeSet::EMPTY, payload(9.0)); // replay
        rx.accept(&p(&[1, 0]), 2, 0, NodeSet::EMPTY, payload(8.0)); // conflict
        let d = rx.accept(&p(&[1, 0]), 1, 0, NodeSet::EMPTY, payload(1.0));
        // seq 1 + the two *distinct* seq-2 contents.
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn stale_seq_is_ignored() {
        let mut rx = FifoReceiver::new();
        rx.accept(&p(&[1, 0]), 1, 0, NodeSet::EMPTY, payload(1.0));
        let d = rx.accept(&p(&[1, 0]), 1, 0, NodeSet::EMPTY, payload(7.0));
        assert!(d.is_empty(), "counter 1 already drained");
    }
}
