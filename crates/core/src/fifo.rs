//! FIFO flooding and FIFO reception (Appendix F).
//!
//! Each node keeps one monotone FIFO counter shared by all of its parallel
//! threads; every `COMPLETE` it initiates carries the next counter value
//! and travels along **all simple paths**. A receiver *FIFO-receives* a
//! message with counter `k` through path `p` once it holds counters
//! `1..k-1` from the same initiator through the same path — exactly the
//! ordering a fully nonfaulty path preserves.
//!
//! Channels are keyed by interned [`PathId`] alone: a path determines its
//! initiator, so the former `(initiator, Path)` composite key — a clone
//! plus a `Vec<NodeId>` hash per arrival — collapses into one `u32` in a
//! fast-hashed map.

use crate::message::{ProtocolMsg, Round};
use crate::message_set::CompletePayload;
use crate::precompute::Topology;
use dbac_graph::{FastHashMap, NodeId, NodeSet, PathId};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The initial FIFO flood of a `COMPLETE` message (Algorithm 1 line 11).
#[must_use]
pub fn initial_complete(
    topo: &Topology,
    me: NodeId,
    round: Round,
    suspects: NodeSet,
    payload: &Arc<CompletePayload>,
    seq: u64,
) -> Vec<(NodeId, ProtocolMsg)> {
    let path = topo.index().trivial(me);
    topo.graph()
        .out_neighbors(me)
        .iter()
        .map(|w| {
            (w, ProtocolMsg::Complete { round, suspects, payload: Arc::clone(payload), path, seq })
        })
        .collect()
}

/// Forwards for a freshly received `COMPLETE` whose stored path ends at
/// `me`: relayed to each `w` keeping the path simple — one forwarding-table
/// lookup per out-neighbor, no clone, no simplicity re-scan.
#[must_use]
pub fn complete_forwards(
    topo: &Topology,
    me: NodeId,
    round: Round,
    suspects: NodeSet,
    payload: &Arc<CompletePayload>,
    stored: PathId,
    seq: u64,
) -> Vec<(NodeId, ProtocolMsg)> {
    let index = topo.index();
    debug_assert_eq!(index.ter(stored), me);
    let mut out = Vec::new();
    for w in topo.graph().out_neighbors(me).iter() {
        if index.extend_simple(stored, w).is_some() {
            out.push((
                w,
                ProtocolMsg::Complete {
                    round,
                    suspects,
                    payload: Arc::clone(payload),
                    path: stored,
                    seq,
                },
            ));
        }
    }
    out
}

/// A message that became FIFO-received and is ready for the witness logic.
///
/// All fields are `Copy` except the payload `Arc` (a reference-count bump);
/// draining a batch no longer clones any path.
#[derive(Clone, Debug)]
pub struct FifoDelivery {
    /// The initiator `c` (the first node of the delivery path).
    pub initiator: NodeId,
    /// The full delivery path (ends at the local node).
    pub path: PathId,
    /// Round tag of the `COMPLETE`.
    pub round: Round,
    /// The suspect set `F` in `COMPLETE(F)`.
    pub suspects: NodeSet,
    /// The payload snapshot.
    pub payload: Arc<CompletePayload>,
    /// Cached payload fingerprint.
    pub fingerprint: u64,
}

/// Per-path reassembly buffers implementing FIFO reception.
#[derive(Debug, Default)]
pub struct FifoReceiver {
    channels: FastHashMap<PathId, Channel>,
}

/// A buffered arrival: round, suspect set, payload, cached fingerprint.
type Buffered = (Round, NodeSet, Arc<CompletePayload>, u64);

#[derive(Debug)]
struct Channel {
    next: u64,
    buffer: BTreeMap<u64, Vec<Buffered>>,
}

impl FifoReceiver {
    /// Creates an empty receiver.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Accepts a validated `COMPLETE` arrival and returns every message
    /// that became FIFO-received as a result (possibly several, when a gap
    /// closes; possibly none, when earlier counters are still missing).
    ///
    /// `initiator` must be `init(path)`; the caller already holds it from
    /// validation, so the receiver does not need the index.
    pub fn accept(
        &mut self,
        path: PathId,
        initiator: NodeId,
        seq: u64,
        round: Round,
        suspects: NodeSet,
        payload: Arc<CompletePayload>,
    ) -> Vec<FifoDelivery> {
        let channel = self
            .channels
            .entry(path)
            .or_insert_with(|| Channel { next: 1, buffer: BTreeMap::new() });
        // Fast path: the expected counter with nothing buffered delivers
        // without touching the reorder buffer (the overwhelmingly common
        // case on honest channels).
        if seq == channel.next && channel.buffer.is_empty() {
            channel.next += 1;
            let fingerprint = payload.fingerprint();
            return vec![FifoDelivery { initiator, path, round, suspects, payload, fingerprint }];
        }
        if seq >= channel.next {
            let fp = payload.fingerprint();
            let slot = channel.buffer.entry(seq).or_default();
            // Exact duplicates (Byzantine replays) are dropped.
            if !slot.iter().any(|(r, s, _, f)| *r == round && *s == suspects && *f == fp) {
                slot.push((round, suspects, payload, fp));
            }
        }
        let mut out = Vec::new();
        while let Some(batch) = channel.buffer.remove(&channel.next) {
            for (round, suspects, payload, fingerprint) in batch {
                out.push(FifoDelivery { initiator, path, round, suspects, payload, fingerprint });
            }
            channel.next += 1;
        }
        out
    }

    /// Number of open path channels.
    #[must_use]
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message_set::MessageSet;
    use crate::test_support::{clique_topo, pid};

    fn topo() -> Topology {
        clique_topo(3, 1)
    }

    fn payload(t: &Topology, tag: f64) -> Arc<CompletePayload> {
        let mut m = MessageSet::new();
        m.insert(pid(t, &[1, 0]), tag);
        Arc::new(CompletePayload::from_message_set(&m))
    }

    fn accept(
        rx: &mut FifoReceiver,
        t: &Topology,
        idx: &[usize],
        seq: u64,
        round: Round,
        pay: Arc<CompletePayload>,
    ) -> Vec<FifoDelivery> {
        let path = pid(t, idx);
        rx.accept(path, t.index().init(path), seq, round, NodeSet::EMPTY, pay)
    }

    #[test]
    fn in_order_messages_deliver_immediately() {
        let t = topo();
        let mut rx = FifoReceiver::new();
        let d1 = accept(&mut rx, &t, &[1, 0], 1, 0, payload(&t, 1.0));
        assert_eq!(d1.len(), 1);
        assert_eq!(d1[0].initiator, NodeId::new(1));
        let d2 = accept(&mut rx, &t, &[1, 0], 2, 0, payload(&t, 2.0));
        assert_eq!(d2.len(), 1);
    }

    #[test]
    fn gaps_hold_messages_back() {
        let t = topo();
        let mut rx = FifoReceiver::new();
        let d = accept(&mut rx, &t, &[1, 0], 2, 0, payload(&t, 2.0));
        assert!(d.is_empty(), "seq 1 missing");
        let d = accept(&mut rx, &t, &[1, 0], 3, 1, payload(&t, 3.0));
        assert!(d.is_empty());
        let d = accept(&mut rx, &t, &[1, 0], 1, 0, payload(&t, 1.0));
        assert_eq!(d.len(), 3, "gap closes, everything drains in order");
        let rounds: Vec<u32> = d.iter().map(|x| x.round).collect();
        assert_eq!(rounds, vec![0, 0, 1]);
    }

    #[test]
    fn channels_are_per_path() {
        let t = topo();
        let mut rx = FifoReceiver::new();
        let d = accept(&mut rx, &t, &[1, 0], 1, 0, payload(&t, 1.0));
        assert_eq!(d.len(), 1);
        // Same initiator, different path: independent channel, needs seq 1.
        let d = accept(&mut rx, &t, &[1, 2, 0], 2, 0, payload(&t, 2.0));
        assert!(d.is_empty());
        assert_eq!(rx.channel_count(), 2);
    }

    #[test]
    fn exact_duplicates_are_dropped_but_conflicts_kept() {
        let t = topo();
        let mut rx = FifoReceiver::new();
        accept(&mut rx, &t, &[1, 0], 2, 0, payload(&t, 9.0));
        accept(&mut rx, &t, &[1, 0], 2, 0, payload(&t, 9.0)); // replay
        accept(&mut rx, &t, &[1, 0], 2, 0, payload(&t, 8.0)); // conflict
        let d = accept(&mut rx, &t, &[1, 0], 1, 0, payload(&t, 1.0));
        // seq 1 + the two *distinct* seq-2 contents.
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn stale_seq_is_ignored() {
        let t = topo();
        let mut rx = FifoReceiver::new();
        accept(&mut rx, &t, &[1, 0], 1, 0, payload(&t, 1.0));
        let d = accept(&mut rx, &t, &[1, 0], 1, 0, payload(&t, 7.0));
        assert!(d.is_empty(), "counter 1 already drained");
    }

    /// Regression for the PathId re-keying: channel census and drain order
    /// must match the original (initiator, owned-path) design exactly.
    #[test]
    fn rekeying_preserves_channel_count_and_drain_order() {
        let t = topo();
        let mut rx = FifoReceiver::new();
        // Open one channel per simple (·,0)-path in K3 (⟨0⟩ excluded: a
        // node does not FIFO-receive from itself over the network).
        let paths: Vec<&[usize]> = vec![&[1, 0], &[2, 0], &[1, 2, 0], &[2, 1, 0]];
        for (i, p) in paths.iter().enumerate() {
            // Arrive out of order: seq 2 first, then seq 1.
            let d = accept(&mut rx, &t, p, 2, 1, payload(&t, i as f64));
            assert!(d.is_empty());
        }
        assert_eq!(rx.channel_count(), paths.len(), "one channel per path");
        for p in &paths {
            let d = accept(&mut rx, &t, p, 1, 0, payload(&t, -1.0));
            // Gap closes: seq 1 then seq 2, rounds 0 then 1.
            assert_eq!(d.len(), 2);
            assert_eq!((d[0].round, d[1].round), (0, 1), "drain order per channel");
            let want = pid(&t, p);
            assert!(d.iter().all(|x| x.path == want));
            assert!(d.iter().all(|x| x.initiator == t.index().init(want)));
        }
        assert_eq!(rx.channel_count(), paths.len(), "drained channels stay open");
    }
}
