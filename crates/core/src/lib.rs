//! # dbac-core
//!
//! The algorithms of *"Asynchronous Byzantine Approximate Consensus in
//! Directed Networks"* (Sakavalas, Tseng, Vaidya — PODC 2020):
//!
//! * [`witness`] — **Algorithm 1 (Byzantine Witness)** and **Algorithm 2
//!   (Completeness)**: per-fault-guess parallel threads, the
//!   Maximal-Consistency condition, FIFO-Receive-All, and the
//!   source-component verification of received witness sets.
//! * [`filter`] — **Algorithm 3 (Filter-and-Average)**: f-cover trimming
//!   of the sorted round history and the midpoint update.
//! * [`flood`] / [`fifo`] — the **RedundantFlood** (Appendix E) and
//!   **FIFO flood/receive** (Appendix F) subroutines.
//! * [`node`] — the honest node tying it all together across rounds, with
//!   the paper's termination rule (`R > log₂(K/ε)`, Section 4.6).
//! * [`adversary`] — a library of Byzantine behaviours (crash, constant
//!   lying, equivocation, relay tampering, path fabrication, chaos,
//!   scripted replay for the Appendix-B construction).
//! * [`crash`] — the asynchronous crash-tolerant 2-reach protocol
//!   (Table 2's other asynchronous cell).
//! * [`scenario`] — the unified **Scenario → Outcome** experiment surface:
//!   one builder over every protocol and runtime, plus the dimensional
//!   [`scenario::sweep`] experiment-plan layer with seed-batch reduction,
//!   and the live [`scenario::StatsRegistry`] observability plane.
//!
//! # Example
//!
//! ```
//! use dbac_core::scenario::{ByzantineWitness, FaultKind, Scenario};
//! use dbac_graph::{generators, NodeId};
//!
//! // K4 tolerates one Byzantine node (n > 3f).
//! let outcome = Scenario::builder(generators::clique(4), 1)
//!     .inputs(vec![1.0, 3.0, 2.0, 0.0])
//!     .epsilon(0.5)
//!     .fault(NodeId::new(3), FaultKind::ConstantLiar { value: 1e6 })
//!     .seed(42)
//!     .protocol(ByzantineWitness::default())
//!     .run()?;
//! assert!(outcome.converged() && outcome.valid());
//! # Ok::<(), dbac_core::error::RunError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod config;
pub mod crash;
pub mod error;
pub mod fifo;
pub mod filter;
pub mod flood;
pub mod message;
pub mod message_set;
pub mod node;
pub mod precompute;
pub mod scenario;
pub mod wire;
pub mod witness;

#[cfg(test)]
pub(crate) mod test_support;

pub use config::{num_rounds, FloodMode, ProtocolConfig};
pub use error::RunError;
pub use message::{ProtocolMsg, Round};
pub use message_set::{CompletePayload, MessageSet};
pub use node::HonestNode;
pub use precompute::Topology;
pub use scenario::{
    ByzantineWitness, CrashTwoReach, FaultKind, Outcome, Protocol, Runtime, Scenario,
    SchedulerSpec, StatsRegistry, StatsSnapshot,
};
