//! The honest protocol node: Algorithm BW driven over the runtime's
//! [`Process`] interface, across all asynchronous rounds.

use crate::config::ProtocolConfig;
use crate::fifo::{self, FifoReceiver};
use crate::filter::FilterOutcome;
use crate::flood;
use crate::message::{validate_complete, validate_flood, ProtocolMsg, Round};
use crate::precompute::Topology;
use crate::witness::{NodePlan, RoundAction, RoundCore, WitnessScratch};
use dbac_graph::{NodeId, NodeSet, PathId};
use dbac_sim::process::{Context, Process};
use dbac_sim::stats::{MsgClass, StatsHandle};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// Message-handling counters for one node.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Flood messages accepted (fresh path, valid).
    pub floods_accepted: u64,
    /// Flood messages dropped (forged, malformed, out-of-range round).
    pub floods_rejected: u64,
    /// Duplicate flood paths ignored (already stored).
    pub floods_duplicate: u64,
    /// `COMPLETE` messages accepted and relayed.
    pub completes_accepted: u64,
    /// `COMPLETE` messages dropped.
    pub completes_rejected: u64,
    /// Messages this node relayed or initiated.
    pub messages_sent: u64,
}

/// An honest node executing Algorithm BW + Filter-and-Average for
/// `config.rounds` asynchronous rounds, then outputting `x[R]`.
///
/// The node keeps relaying (and keeps flooding late `COMPLETE` witnesses)
/// after its own output is fixed — peers' liveness depends on it.
pub struct HonestNode {
    topo: Arc<Topology>,
    plan: Arc<NodePlan>,
    config: ProtocolConfig,
    me: NodeId,
    x: Vec<f64>,
    rounds: HashMap<Round, RoundCore>,
    fired_guesses: Vec<NodeSet>,
    fa_outcomes: Vec<FilterOutcome>,
    fifo_counter: u64,
    fifo_rx: FifoReceiver,
    /// Keyed partly by the payload fingerprint (Byzantine-influenced), so
    /// this uses the seeded default hasher, not `FastHashSet`.
    seen_completes: HashSet<(PathId, u64, u64)>,
    /// The node's reusable witness scratch columns, shared by every
    /// round's FIFO-Receive-All bitmaps (allocated once, recycled as
    /// witnesses complete).
    scratch: WitnessScratch,
    output: Option<f64>,
    stats: NodeStats,
    /// Live-registry handle: protocol progress (rounds, MC firings,
    /// witness completions, FRA marks) is reported here as it happens.
    live: Option<StatsHandle>,
}

impl HonestNode {
    /// Creates a node with the given input value.
    #[must_use]
    pub fn new(topo: Arc<Topology>, config: ProtocolConfig, me: NodeId, input: f64) -> Self {
        let plan = Arc::new(NodePlan::new(&topo, me));
        HonestNode {
            topo,
            plan,
            config,
            me,
            x: vec![input],
            rounds: HashMap::new(),
            fired_guesses: Vec::new(),
            fa_outcomes: Vec::new(),
            fifo_counter: 0,
            fifo_rx: FifoReceiver::new(),
            seen_completes: HashSet::new(),
            scratch: WitnessScratch::new(),
            output: None,
            stats: NodeStats::default(),
            live: None,
        }
    }

    /// Attaches a live-registry handle; the node reports its protocol
    /// progress counters (rounds fired, MC firings, witness completions,
    /// FRA marks) through it. One handle per node — the handle's shard
    /// is written only from the thread running this node.
    #[must_use]
    pub fn with_stats(mut self, handle: StatsHandle) -> Self {
        self.live = Some(handle);
        self
    }

    /// Drains the scratch-accumulated witness counters into the live
    /// handle. Called after every externally-driven activation.
    fn drain_live(&mut self) {
        let Some(live) = &self.live else {
            self.scratch.fra_marks = 0;
            self.scratch.witness_completions = 0;
            return;
        };
        if self.scratch.fra_marks > 0 {
            live.add_fra_marks(self.scratch.fra_marks);
            self.scratch.fra_marks = 0;
        }
        if self.scratch.witness_completions > 0 {
            live.add_witness_completions(self.scratch.witness_completions);
            self.scratch.witness_completions = 0;
        }
    }

    /// This node's identifier.
    #[must_use]
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// The final output, once all rounds have completed.
    #[must_use]
    pub fn output(&self) -> Option<f64> {
        self.output
    }

    /// Returns `true` once the node has decided.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.output.is_some()
    }

    /// The state-value trajectory `x[0], x[1], …` (grows as rounds fire).
    #[must_use]
    pub fn x_history(&self) -> &[f64] {
        &self.x
    }

    /// The fault-set guess whose thread won each completed round
    /// (telemetry for the experiments).
    #[must_use]
    pub fn fired_guesses(&self) -> &[NodeSet] {
        &self.fired_guesses
    }

    /// Per-round Filter-and-Average outcomes.
    #[must_use]
    pub fn fa_outcomes(&self) -> &[FilterOutcome] {
        &self.fa_outcomes
    }

    /// Message-handling counters.
    #[must_use]
    pub fn stats(&self) -> NodeStats {
        self.stats
    }

    /// The accumulated message history `M_v` for `round`, if the node
    /// holds any state for it — the inspection surface the adversarial
    /// regression tests pin message-set outcomes against.
    #[must_use]
    pub fn round_message_set(&self, round: Round) -> Option<&crate::message_set::MessageSet> {
        self.rounds.get(&round).map(RoundCore::message_set)
    }

    fn begin_round(&mut self, round: Round, ctx: &mut Context<ProtocolMsg>) -> Vec<RoundAction> {
        let value = self.x[round as usize];
        for (to, msg) in flood::initial_flood(&self.topo, self.me, round, value) {
            self.stats.messages_sent += 1;
            ctx.send(to, msg);
        }
        let topo = Arc::clone(&self.topo);
        let plan = Arc::clone(&self.plan);
        let core = self.rounds.entry(round).or_insert_with(|| RoundCore::new(&topo, &plan));
        core.start(value, &topo, &plan, &mut self.scratch)
    }

    fn execute(&mut self, ctx: &mut Context<ProtocolMsg>, round: Round, initial: Vec<RoundAction>) {
        let mut queue: VecDeque<(Round, RoundAction)> =
            initial.into_iter().map(|a| (round, a)).collect();
        while let Some((r, action)) = queue.pop_front() {
            match action {
                RoundAction::FloodComplete { guess, payload } => {
                    if let Some(live) = &self.live {
                        live.record_mc_firing();
                    }
                    self.fifo_counter += 1;
                    let seq = self.fifo_counter;
                    for (to, msg) in
                        fifo::initial_complete(&self.topo, self.me, r, guess, &payload, seq)
                    {
                        self.stats.messages_sent += 1;
                        ctx.send(to, msg);
                    }
                    // Self-delivery over the trivial path (the node is its
                    // own witness: reach_v(F̄) always contains v).
                    let fp = payload.fingerprint();
                    let topo = Arc::clone(&self.topo);
                    let plan = Arc::clone(&self.plan);
                    let core = self.rounds.get_mut(&r).expect("round exists when MC fires");
                    let acts = core.add_fifo_delivery(
                        self.me,
                        topo.index().trivial(self.me),
                        guess,
                        &payload,
                        fp,
                        &topo,
                        &plan,
                        &mut self.scratch,
                    );
                    queue.extend(acts.into_iter().map(|a| (r, a)));
                }
                RoundAction::Advance { guess, outcome } => {
                    if let Some(live) = &self.live {
                        live.record_round_fired();
                    }
                    debug_assert_eq!(self.x.len(), r as usize + 1, "rounds advance in order");
                    self.x.push(outcome.value);
                    self.fired_guesses.push(guess);
                    self.fa_outcomes.push(outcome);
                    let next = r + 1;
                    if next >= self.config.rounds {
                        self.output = Some(outcome.value);
                    } else {
                        let acts = self.begin_round(next, ctx);
                        queue.extend(acts.into_iter().map(|a| (next, a)));
                    }
                }
            }
        }
    }

    fn on_flood(
        &mut self,
        ctx: &mut Context<ProtocolMsg>,
        from: NodeId,
        round: Round,
        value: f64,
        path: PathId,
    ) {
        if round >= self.config.rounds || !value.is_finite() {
            self.stats.floods_rejected += 1;
            return;
        }
        let Some(stored) = validate_flood(&self.topo, self.me, from, path) else {
            self.stats.floods_rejected += 1;
            return;
        };
        let topo = Arc::clone(&self.topo);
        let plan = Arc::clone(&self.plan);
        let core = self.rounds.entry(round).or_insert_with(|| RoundCore::new(&topo, &plan));
        let (fresh, actions) = core.add_flood(stored, value, &topo, &plan, &mut self.scratch);
        if !fresh {
            self.stats.floods_duplicate += 1;
            return;
        }
        self.stats.floods_accepted += 1;
        for (to, msg) in flood::flood_forwards(&self.topo, self.me, round, value, stored) {
            self.stats.messages_sent += 1;
            ctx.send(to, msg);
        }
        self.execute(ctx, round, actions);
    }

    #[allow(clippy::too_many_arguments)]
    fn on_complete(
        &mut self,
        ctx: &mut Context<ProtocolMsg>,
        from: NodeId,
        round: Round,
        suspects: NodeSet,
        payload: Arc<crate::message_set::CompletePayload>,
        path: PathId,
        seq: u64,
    ) {
        let universe = self.topo.graph().vertex_set();
        if round >= self.config.rounds
            || suspects.len() > self.topo.f()
            || !suspects.is_subset(universe)
        {
            self.stats.completes_rejected += 1;
            return;
        }
        let Some(stored) = validate_complete(&self.topo, self.me, from, path, suspects, seq) else {
            self.stats.completes_rejected += 1;
            return;
        };
        let fp = payload.fingerprint();
        if !self.seen_completes.insert((stored, seq, fp)) {
            self.stats.completes_rejected += 1;
            return;
        }
        self.stats.completes_accepted += 1;
        for (to, msg) in
            fifo::complete_forwards(&self.topo, self.me, round, suspects, &payload, stored, seq)
        {
            self.stats.messages_sent += 1;
            ctx.send(to, msg);
        }
        let initiator = self.topo.index().init(stored);
        let deliveries = self.fifo_rx.accept(stored, initiator, seq, round, suspects, payload);
        for d in deliveries {
            // Note: d.suspects may legitimately contain this node — another
            // node's winning guess can suspect us, and Theorem 10 needs us
            // to become informed about it all the same.
            if d.round >= self.config.rounds {
                continue;
            }
            let topo = Arc::clone(&self.topo);
            let plan = Arc::clone(&self.plan);
            let core = self.rounds.entry(d.round).or_insert_with(|| RoundCore::new(&topo, &plan));
            let actions = core.add_fifo_delivery(
                d.initiator,
                d.path,
                d.suspects,
                &d.payload,
                d.fingerprint,
                &topo,
                &plan,
                &mut self.scratch,
            );
            self.execute(ctx, d.round, actions);
        }
    }
}

impl Process for HonestNode {
    type Message = ProtocolMsg;

    fn on_start(&mut self, ctx: &mut Context<ProtocolMsg>) {
        if self.config.rounds == 0 {
            // K < ε: the input already satisfies ε-agreement (Section 4.6).
            self.output = Some(self.x[0]);
            return;
        }
        let actions = self.begin_round(0, ctx);
        self.execute(ctx, 0, actions);
        self.drain_live();
    }

    fn on_message(&mut self, ctx: &mut Context<ProtocolMsg>, from: NodeId, msg: ProtocolMsg) {
        match msg {
            ProtocolMsg::Flood { round, value, path } => {
                self.on_flood(ctx, from, round, value, path);
            }
            ProtocolMsg::Complete { round, suspects, payload, path, seq } => {
                self.on_complete(ctx, from, round, suspects, payload, path, seq);
            }
        }
        self.drain_live();
    }

    fn classify(msg: &ProtocolMsg) -> MsgClass {
        match msg {
            ProtocolMsg::Flood { .. } => MsgClass::Flood,
            ProtocolMsg::Complete { .. } => MsgClass::Complete,
        }
    }
}

impl std::fmt::Debug for HonestNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HonestNode")
            .field("me", &self.me)
            .field("rounds_done", &(self.x.len() - 1))
            .field("output", &self.output)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolConfig;
    use dbac_graph::{generators, PathBudget};
    use dbac_sim::scheduler::{FixedDelay, RandomDelay};
    use dbac_sim::sim::Simulation;

    fn id(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn run_clique(n: usize, f: usize, inputs: &[f64], epsilon: f64, seed: Option<u64>) -> Vec<f64> {
        let topo = Arc::new(
            Topology::new(
                generators::clique(n),
                f,
                crate::config::FloodMode::Redundant,
                PathBudget::default(),
            )
            .unwrap(),
        );
        let (lo, hi) = inputs.iter().fold((f64::MAX, f64::MIN), |(l, h), &v| (l.min(v), h.max(v)));
        let config = ProtocolConfig::new(f, epsilon, (lo, hi));
        let policy: Box<dyn dbac_sim::DeliveryPolicy + Send> = match seed {
            Some(s) => Box::new(RandomDelay::new(s, 1, 20)),
            None => Box::new(FixedDelay::new(1)),
        };
        let mut sim = Simulation::new(Arc::new(generators::clique(n)), policy);
        for (i, &input) in inputs.iter().enumerate() {
            sim.set_honest(id(i), HonestNode::new(Arc::clone(&topo), config, id(i), input));
        }
        sim.run().expect("quiesces");
        (0..n).map(|i| sim.honest(id(i)).unwrap().output().expect("node decided")).collect()
    }

    #[test]
    fn all_honest_clique_converges() {
        let outputs = run_clique(4, 1, &[0.0, 10.0, 4.0, 6.0], 0.5, None);
        let spread = outputs.iter().cloned().fold(f64::MIN, f64::max)
            - outputs.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 0.5, "outputs {outputs:?} not within ε");
        // Validity: inside the honest input range.
        assert!(outputs.iter().all(|&v| (0.0..=10.0).contains(&v)));
    }

    #[test]
    fn all_honest_converges_under_random_schedules() {
        for seed in [1, 7, 99] {
            let outputs = run_clique(4, 1, &[1.0, 9.0, 3.0, 5.0], 1.0, Some(seed));
            let spread = outputs.iter().cloned().fold(f64::MIN, f64::max)
                - outputs.iter().cloned().fold(f64::MAX, f64::min);
            assert!(spread < 1.0, "seed {seed}: outputs {outputs:?}");
        }
    }

    #[test]
    fn zero_rounds_outputs_input() {
        // ε larger than the range: decide immediately.
        let outputs = run_clique(3, 0, &[1.0, 1.2, 1.1], 5.0, None);
        assert_eq!(outputs, vec![1.0, 1.2, 1.1]);
    }

    #[test]
    fn history_and_telemetry_are_recorded() {
        let topo = Arc::new(
            Topology::new(
                generators::clique(4),
                1,
                crate::config::FloodMode::Redundant,
                PathBudget::default(),
            )
            .unwrap(),
        );
        let config = ProtocolConfig::new(1, 0.5, (0.0, 8.0));
        let mut sim =
            Simulation::new(Arc::new(generators::clique(4)), Box::new(FixedDelay::new(1)));
        for (i, input) in [0.0, 8.0, 2.0, 6.0].into_iter().enumerate() {
            sim.set_honest(id(i), HonestNode::new(Arc::clone(&topo), config, id(i), input));
        }
        sim.run().unwrap();
        let node = sim.honest(id(0)).unwrap();
        assert_eq!(node.x_history().len() as u32, config.rounds + 1);
        assert_eq!(node.fired_guesses().len() as u32, config.rounds);
        assert_eq!(node.fa_outcomes().len() as u32, config.rounds);
        assert!(node.stats().floods_accepted > 0);
        assert!(node.stats().messages_sent > 0);
        assert!(node.is_done());
        assert!(format!("{node:?}").contains("output"));
    }

    #[test]
    fn forged_messages_are_rejected_and_counted() {
        let topo = Arc::new(
            Topology::new(
                generators::clique(4),
                1,
                crate::config::FloodMode::Redundant,
                PathBudget::default(),
            )
            .unwrap(),
        );
        let config = ProtocolConfig::new(1, 0.5, (0.0, 8.0));
        let mut node = HonestNode::new(Arc::clone(&topo), config, id(0), 1.0);
        let mut ctx = dbac_sim::process::Context::new(id(0), topo.graph().out_neighbors(id(0)));
        node.on_start(&mut ctx);
        let _ = ctx.take_outbox();

        let path_23 =
            topo.index().resolve(&dbac_graph::Path::from_indices(&[2, 3]).unwrap()).unwrap();
        let trivial_1 = topo.index().trivial(id(1));
        let forgeries = vec![
            // Path does not end at the authenticated sender.
            ProtocolMsg::Flood { round: 0, value: 5.0, path: path_23 },
            // Round beyond the protocol horizon.
            ProtocolMsg::Flood { round: 999, value: 5.0, path: trivial_1 },
            // Non-finite value.
            ProtocolMsg::Flood { round: 0, value: f64::NAN, path: trivial_1 },
            // An id that interns nothing at all.
            ProtocolMsg::Flood { round: 0, value: 5.0, path: PathId::from_raw(u32::MAX - 1) },
        ];
        let before = node.stats();
        for msg in forgeries {
            node.on_message(&mut ctx, id(1), msg);
        }
        let after = node.stats();
        assert_eq!(after.floods_rejected - before.floods_rejected, 4);
        assert_eq!(after.floods_accepted, before.floods_accepted);
        assert_eq!(ctx.pending(), 0, "forgeries must not be relayed");

        // Forged COMPLETE: suspect set larger than f.
        let payload = Arc::new(crate::message_set::CompletePayload::from_message_set(
            &crate::message_set::MessageSet::new(),
        ));
        let big: NodeSet = [id(2), id(3)].into_iter().collect();
        node.on_message(
            &mut ctx,
            id(1),
            ProtocolMsg::Complete { round: 0, suspects: big, payload, path: trivial_1, seq: 1 },
        );
        assert_eq!(node.stats().completes_rejected, after.completes_rejected + 1);
    }

    #[test]
    fn future_round_messages_buffer_correctly() {
        // A node receiving round-2 floods before finishing round 0 must
        // buffer (and relay) them, then use them when it arrives there.
        let topo = Arc::new(
            Topology::new(
                generators::clique(4),
                1,
                crate::config::FloodMode::Redundant,
                PathBudget::default(),
            )
            .unwrap(),
        );
        let config = ProtocolConfig::new(1, 0.5, (0.0, 8.0));
        let mut node = HonestNode::new(Arc::clone(&topo), config, id(0), 1.0);
        let mut ctx = dbac_sim::process::Context::new(id(0), topo.graph().out_neighbors(id(0)));
        node.on_start(&mut ctx);
        let _ = ctx.take_outbox();
        node.on_message(
            &mut ctx,
            id(1),
            ProtocolMsg::Flood { round: 2, value: 5.0, path: topo.index().trivial(id(1)) },
        );
        assert_eq!(node.stats().floods_accepted, 1);
        assert!(ctx.pending() > 0, "future-round messages still relay");
        assert!(!node.is_done());
    }

    #[test]
    fn spread_halves_each_round() {
        // Lemma 15: U[r+1] − µ[r+1] ≤ (U[r] − µ[r]) / 2 across honest nodes.
        let topo = Arc::new(
            Topology::new(
                generators::clique(4),
                1,
                crate::config::FloodMode::Redundant,
                PathBudget::default(),
            )
            .unwrap(),
        );
        let config = ProtocolConfig::new(1, 0.25, (0.0, 16.0));
        let mut sim =
            Simulation::new(Arc::new(generators::clique(4)), Box::new(RandomDelay::new(5, 1, 30)));
        let inputs = [0.0, 16.0, 4.0, 12.0];
        for (i, input) in inputs.into_iter().enumerate() {
            sim.set_honest(id(i), HonestNode::new(Arc::clone(&topo), config, id(i), input));
        }
        sim.run().unwrap();
        let histories: Vec<&[f64]> =
            (0..4).map(|i| sim.honest(id(i)).unwrap().x_history()).collect();
        for r in 0..config.rounds as usize {
            let spread = |round: usize| {
                let vals: Vec<f64> = histories.iter().map(|h| h[round]).collect();
                vals.iter().cloned().fold(f64::MIN, f64::max)
                    - vals.iter().cloned().fold(f64::MAX, f64::min)
            };
            assert!(
                spread(r + 1) <= spread(r) / 2.0 + 1e-12,
                "round {r}: {} -> {}",
                spread(r),
                spread(r + 1)
            );
        }
    }
}
