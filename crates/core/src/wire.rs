//! Binary wire codecs for the core protocol messages.
//!
//! [`Runtime::Net`](crate::scenario::Runtime::Net) serializes every
//! message through the workspace's hand-rolled little-endian codec (the
//! serde shim is marker-only and never produces bytes). The encodings
//! reuse the canonical sparse wire form the in-memory types already
//! document: a [`CompletePayload`] travels as its `(PathId, f64)` entry
//! list in id order, path ids as raw `u32`s, suspect sets as their
//! `NODE_WORDS` little-endian backing words (width-honest: 32 bytes by
//! default, wider under `huge-graphs` — both endpoints share the binary,
//! so they always agree), and values as `f64` bit patterns.
//!
//! ```text
//! ProtocolMsg::Flood    := 0x00 round:u32 value:f64bits path:u32
//! ProtocolMsg::Complete := 0x01 round:u32 suspects:[u64; NODE_WORDS] path:u32 seq:u64
//!                          count:u32 (path:u32 valuebits:u64)^count
//! CrashMsg              := round:u32 value:f64bits path:u32
//! ```
//!
//! Two invariants the tests below pin down:
//!
//! * **Byte-identical round trips.** `encode ∘ decode ∘ encode` is the
//!   identity on bytes for every message — including NaN payloads, where
//!   structural equality cannot express the property.
//! * **Trust boundary.** The decoder is total and *structural only*: any
//!   `u32` decodes into a path-id-shaped field, and forged ids are
//!   rejected later by `validate_flood`/`validate_complete`, exactly as
//!   for in-process adversaries. The one semantic rule the decoder does
//!   enforce is that a [`CompletePayload`] is rebuilt through
//!   [`CompletePayload::from_entries`], so a wire peer can never supply
//!   its own fingerprint.

use crate::crash::CrashMsg;
use crate::message::ProtocolMsg;
use crate::message_set::CompletePayload;
use dbac_graph::PathId;
use dbac_sim::net::codec::{encode_node_set, WireError, WireMessage, WireReader};
use std::sync::Arc;

const TAG_FLOOD: u8 = 0;
const TAG_COMPLETE: u8 = 1;

/// Bytes per `(PathId, f64)` payload entry on the wire.
const ENTRY_BYTES: usize = 4 + 8;

fn encode_payload(payload: &CompletePayload, out: &mut Vec<u8>) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    for &(path, value) in payload.entries() {
        out.extend_from_slice(&path.raw().to_le_bytes());
        out.extend_from_slice(&value.to_bits().to_le_bytes());
    }
}

fn decode_payload(r: &mut WireReader<'_>) -> Result<CompletePayload, WireError> {
    let count = r.u32()? as usize;
    // Bound the allocation by the bytes actually present, so a forged
    // count cannot balloon memory before the reads fail.
    if r.remaining() / ENTRY_BYTES < count {
        return Err(WireError::Truncated { needed: count * ENTRY_BYTES, available: r.remaining() });
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let path = PathId::from_raw(r.u32()?);
        let value = r.f64()?;
        entries.push((path, value));
    }
    Ok(CompletePayload::from_entries(entries))
}

impl WireMessage for ProtocolMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ProtocolMsg::Flood { round, value, path } => {
                out.push(TAG_FLOOD);
                out.extend_from_slice(&round.to_le_bytes());
                out.extend_from_slice(&value.to_bits().to_le_bytes());
                out.extend_from_slice(&path.raw().to_le_bytes());
            }
            ProtocolMsg::Complete { round, suspects, payload, path, seq } => {
                out.push(TAG_COMPLETE);
                out.extend_from_slice(&round.to_le_bytes());
                encode_node_set(*suspects, out);
                out.extend_from_slice(&path.raw().to_le_bytes());
                out.extend_from_slice(&seq.to_le_bytes());
                encode_payload(payload, out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            TAG_FLOOD => Ok(ProtocolMsg::Flood {
                round: r.u32()?,
                value: r.f64()?,
                path: PathId::from_raw(r.u32()?),
            }),
            TAG_COMPLETE => {
                let round = r.u32()?;
                let suspects = r.node_set()?;
                let path = PathId::from_raw(r.u32()?);
                let seq = r.u64()?;
                let payload = Arc::new(decode_payload(r)?);
                Ok(ProtocolMsg::Complete { round, suspects, payload, path, seq })
            }
            tag => Err(WireError::UnknownTag { tag }),
        }
    }
}

impl WireMessage for CrashMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.round.to_le_bytes());
        out.extend_from_slice(&self.value.to_bits().to_le_bytes());
        out.extend_from_slice(&self.path.raw().to_le_bytes());
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(CrashMsg { round: r.u32()?, value: r.f64()?, path: PathId::from_raw(r.u32()?) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FloodMode;
    use crate::message::validate_flood;
    use crate::test_support::topo_of;
    use dbac_graph::{generators, NodeId, NodeSet};
    use dbac_sim::net::codec::MAX_FRAME;
    use dbac_sim::net::codec::NODE_SET_BYTES;

    /// One splitmix64 step — the corpus generator (no fuzzer dependency).
    fn mix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Round trip must reproduce the exact bytes (structural equality
    /// cannot cover NaN values; byte identity covers everything).
    fn assert_bytes_round_trip(msg: &ProtocolMsg) {
        let bytes = msg.to_bytes();
        let decoded = ProtocolMsg::from_bytes(&bytes).expect("own encoding decodes");
        assert_eq!(decoded.to_bytes(), bytes, "re-encoding must be byte-identical");
    }

    /// Draws an f64 covering the awkward corners: negatives, subnormals,
    /// ±0.0, infinities, NaN, and plain random bit patterns.
    fn draw_value(state: &mut u64) -> f64 {
        match mix(state) % 8 {
            0 => -1234.5678,
            1 => f64::from_bits(1), // smallest positive subnormal
            2 => -f64::from_bits(mix(state) % 0x000F_FFFF_FFFF_FFFF), // subnormal range
            3 => -0.0,
            4 => f64::NEG_INFINITY,
            5 => f64::NAN,
            _ => f64::from_bits(mix(state)),
        }
    }

    fn draw_msg(state: &mut u64) -> ProtocolMsg {
        if mix(state) % 2 == 0 {
            ProtocolMsg::Flood {
                round: mix(state) as u32,
                value: draw_value(state),
                path: PathId::from_raw(mix(state) as u32),
            }
        } else {
            // Dense (contiguous ids from 0) or sparse (random ids) sets.
            let dense = mix(state) % 2 == 0;
            let count = (mix(state) % 40) as usize;
            let entries = (0..count)
                .map(|i| {
                    let id = if dense { i as u32 } else { mix(state) as u32 };
                    (PathId::from_raw(id), draw_value(state))
                })
                .collect();
            ProtocolMsg::Complete {
                round: mix(state) as u32,
                suspects: {
                    let mut words = [0u64; dbac_graph::NODE_WORDS];
                    for w in &mut words {
                        *w = mix(state);
                    }
                    NodeSet::from_words(words)
                },
                payload: Arc::new(CompletePayload::from_entries(entries)),
                path: PathId::from_raw(mix(state) as u32),
                seq: mix(state),
            }
        }
    }

    #[test]
    fn protocol_msg_round_trips_byte_identically() {
        let mut state = 0xC0DE_C0DE;
        for _ in 0..500 {
            assert_bytes_round_trip(&draw_msg(&mut state));
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// Arbitrary messages (every variant, dense and sparse path
            /// sets, negative/subnormal/NaN values) re-encode to the
            /// exact bytes they decoded from.
            #[test]
            fn arbitrary_messages_round_trip(seed in 0u64..u64::MAX) {
                let mut state = seed;
                assert_bytes_round_trip(&draw_msg(&mut state));
            }

            /// Decoding an arbitrary buffer never panics — it returns a
            /// message or a typed error.
            #[test]
            fn arbitrary_buffers_never_panic(
                buf in prop::collection::vec(0u8..=255, 0..64),
            ) {
                let _ = ProtocolMsg::from_bytes(&buf);
                let _ = CrashMsg::from_bytes(&buf);
            }
        }
    }

    #[test]
    fn structural_round_trip_for_non_nan_messages() {
        let mut state = 7;
        let mut checked = 0;
        while checked < 200 {
            let msg = draw_msg(&mut state);
            let has_nan = match &msg {
                ProtocolMsg::Flood { value, .. } => value.is_nan(),
                ProtocolMsg::Complete { payload, .. } => {
                    payload.entries().iter().any(|(_, v)| v.is_nan())
                }
            };
            if has_nan {
                continue;
            }
            assert_eq!(ProtocolMsg::from_bytes(&msg.to_bytes()).unwrap(), msg);
            checked += 1;
        }
    }

    #[test]
    fn max_length_frame_round_trips() {
        // The largest Complete that still fits the 1 MiB frame cap.
        let header = 1 + 4 + NODE_SET_BYTES + 4 + 8 + 4;
        let count = (MAX_FRAME - header) / ENTRY_BYTES;
        let entries: Vec<(PathId, f64)> =
            (0..count).map(|i| (PathId::from_raw(i as u32), i as f64 * 0.5)).collect();
        let msg = ProtocolMsg::Complete {
            round: 9,
            suspects: NodeSet::universe(dbac_graph::MAX_NODES),
            payload: Arc::new(CompletePayload::from_entries(entries)),
            path: PathId::from_raw(3),
            seq: 77,
        };
        let bytes = msg.to_bytes();
        assert!(bytes.len() <= MAX_FRAME, "{} bytes exceeds the frame cap", bytes.len());
        assert!(bytes.len() > MAX_FRAME - ENTRY_BYTES, "test should sit at the cap");
        assert_bytes_round_trip(&msg);
    }

    #[test]
    fn decode_never_panics_on_random_buffers() {
        // Seeded corpus: pure-random buffers plus corrupted truncations /
        // extensions of genuine encodings, across the interesting length
        // range. Every outcome must be Ok or a typed WireError.
        let mut state = 0xBAD_5EED;
        for case in 0..20_000u32 {
            let len = (mix(&mut state) % 96) as usize;
            let mut buf: Vec<u8> = (0..len).map(|_| (mix(&mut state) & 0xFF) as u8).collect();
            if case % 3 == 0 {
                // Start from a real message, then truncate and flip a byte.
                buf = draw_msg(&mut state).to_bytes();
                let cut = (mix(&mut state) as usize) % (buf.len() + 1);
                buf.truncate(cut);
                if !buf.is_empty() {
                    let i = (mix(&mut state) as usize) % buf.len();
                    buf[i] ^= (mix(&mut state) & 0xFF) as u8;
                }
            }
            let _ = ProtocolMsg::from_bytes(&buf);
            let _ = CrashMsg::from_bytes(&buf);
        }
    }

    #[test]
    fn forged_count_is_rejected_before_allocation() {
        // A Complete header advertising u32::MAX entries with no bytes
        // behind it must fail with Truncated, not try to allocate.
        let mut buf = vec![TAG_COMPLETE];
        buf.extend_from_slice(&1u32.to_le_bytes()); // round
        buf.extend_from_slice(&[0u8; NODE_SET_BYTES]); // suspects
        buf.extend_from_slice(&0u32.to_le_bytes()); // path
        buf.extend_from_slice(&1u64.to_le_bytes()); // seq
        buf.extend_from_slice(&u32::MAX.to_le_bytes()); // entry count
        assert!(matches!(ProtocolMsg::from_bytes(&buf).unwrap_err(), WireError::Truncated { .. }));
    }

    #[test]
    fn unknown_tag_and_trailing_bytes_are_typed_errors() {
        assert_eq!(
            ProtocolMsg::from_bytes(&[0x7F]).unwrap_err(),
            WireError::UnknownTag { tag: 0x7F }
        );
        let mut bytes =
            ProtocolMsg::Flood { round: 1, value: 2.0, path: PathId::from_raw(0) }.to_bytes();
        bytes.push(0);
        assert_eq!(ProtocolMsg::from_bytes(&bytes).unwrap_err(), WireError::Trailing { extra: 1 });
    }

    #[test]
    fn forged_path_id_decodes_but_fails_validation() {
        // The codec is topology-agnostic: a forged id decodes fine …
        let forged =
            ProtocolMsg::Flood { round: 0, value: 1.0, path: PathId::from_raw(u32::MAX - 1) };
        let decoded = ProtocolMsg::from_bytes(&forged.to_bytes()).unwrap();
        let ProtocolMsg::Flood { path, .. } = decoded else { panic!("flood expected") };
        // … and the validation boundary rejects it, exactly as it does
        // for forged ids from in-process adversaries.
        let topo = topo_of(generators::clique(4), 1, FloodMode::Redundant);
        assert!(validate_flood(&topo, NodeId::new(2), NodeId::new(1), path).is_none());
    }

    #[test]
    fn payload_fingerprint_is_recomputed_not_trusted() {
        // Two payloads with the same entries must compare equal after a
        // round trip — the fingerprint comes from from_entries, never
        // from the wire.
        let entries = vec![(PathId::from_raw(4), 2.5), (PathId::from_raw(1), -3.0)];
        let original = Arc::new(CompletePayload::from_entries(entries.clone()));
        let msg = ProtocolMsg::Complete {
            round: 1,
            suspects: NodeSet::EMPTY,
            payload: Arc::clone(&original),
            path: PathId::from_raw(0),
            seq: 1,
        };
        let decoded = ProtocolMsg::from_bytes(&msg.to_bytes()).unwrap();
        let ProtocolMsg::Complete { payload, .. } = decoded else { panic!("complete expected") };
        assert_eq!(*payload, *original);
        assert_eq!(payload.fingerprint(), original.fingerprint());
    }

    #[test]
    fn crash_msg_round_trips() {
        let mut state = 11;
        for _ in 0..200 {
            let msg = CrashMsg {
                round: mix(&mut state) as u32,
                value: draw_value(&mut state),
                path: PathId::from_raw(mix(&mut state) as u32),
            };
            let bytes = msg.to_bytes();
            let decoded = CrashMsg::from_bytes(&bytes).unwrap();
            assert_eq!(decoded.to_bytes(), bytes);
        }
    }
}
