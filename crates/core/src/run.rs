//! **Deprecated** pre-scenario entry points, kept as thin compatibility
//! shims.
//!
//! This module was the original BW-only run harness. The workspace now
//! exposes one experiment surface for *every* protocol and runtime —
//! [`scenario`](crate::scenario) — and everything here delegates to it:
//!
//! * [`RunConfig`] / [`RunConfigBuilder`] — a BW-shaped configuration that
//!   validates through the scenario builder and converts via
//!   [`RunConfig::to_scenario`];
//! * [`run_byzantine_consensus`] / [`run_byzantine_consensus_threaded`] —
//!   `#[deprecated]` wrappers around
//!   `Scenario::builder(..).protocol(ByzantineWitness).runtime(..).run()`;
//! * [`RunOutcome`] — the legacy result struct, now a plain re-shape of
//!   the unified [`Outcome`] (`From` impl
//!   provided).
//!
//! New code should use [`scenario`](crate::scenario) directly; this module
//! exists so published call sites keep compiling while they migrate.

use crate::adversary::AdversaryKind;
use crate::config::{FloodMode, ProtocolConfig};
use crate::error::RunError;
use crate::scenario::{ByzantineWitness, Outcome, Runtime, Scenario};
use dbac_graph::{Digraph, NodeId, NodeSet, PathBudget};
use dbac_sim::sim::SimStats;
use std::time::Duration;

pub use crate::scenario::SchedulerSpec;

/// A fully specified BW consensus run (legacy shape; converts to a
/// [`Scenario`] via [`RunConfig::to_scenario`]).
#[derive(Clone, Debug)]
pub struct RunConfig {
    // Only the knobs the type-erased scenario cannot return are shadowed
    // here; everything else reads through `scenario`.
    flood_mode: FloodMode,
    rounds_override: Option<u32>,
    /// The scenario validated once at build time; runs clone it.
    scenario: Scenario,
}

impl RunConfig {
    /// Starts building a run over `graph` with fault bound `f`.
    #[must_use]
    pub fn builder(graph: Digraph, f: usize) -> RunConfigBuilder {
        RunConfigBuilder {
            graph,
            f,
            inputs: Vec::new(),
            epsilon: 0.1,
            range: None,
            byzantine: Vec::new(),
            scheduler: SchedulerSpec::Fixed(1),
            flood_mode: FloodMode::Redundant,
            budget: PathBudget::default(),
            max_events: 50_000_000,
            rounds_override: None,
        }
    }

    /// The network.
    #[must_use]
    pub fn graph(&self) -> &Digraph {
        self.scenario.graph()
    }

    /// The derived protocol parameters.
    #[must_use]
    pub fn protocol(&self) -> ProtocolConfig {
        let mut p =
            ProtocolConfig::new(self.scenario.f(), self.scenario.epsilon(), self.scenario.range())
                .with_flood_mode(self.flood_mode);
        if let Some(r) = self.rounds_override {
            p = p.with_rounds(r);
        }
        p
    }

    /// The set of honest nodes.
    #[must_use]
    pub fn honest_set(&self) -> NodeSet {
        self.scenario.honest_set()
    }

    /// The equivalent scenario on the given runtime — the conversion the
    /// deprecated entry points go through. Validation happened once in
    /// [`RunConfigBuilder::build`]; this is a clone plus a runtime switch.
    ///
    /// # Errors
    ///
    /// None today (kept fallible for call-site compatibility).
    pub fn to_scenario(&self, runtime: Runtime) -> Result<Scenario, RunError> {
        Ok(self.scenario.clone().with_runtime(runtime))
    }
}

/// Builder for [`RunConfig`].
#[derive(Clone, Debug)]
pub struct RunConfigBuilder {
    graph: Digraph,
    f: usize,
    inputs: Vec<f64>,
    epsilon: f64,
    range: Option<(f64, f64)>,
    byzantine: Vec<(NodeId, AdversaryKind)>,
    scheduler: SchedulerSpec,
    flood_mode: FloodMode,
    budget: PathBudget,
    max_events: u64,
    rounds_override: Option<u32>,
}

impl RunConfigBuilder {
    /// Sets one input per node (Byzantine nodes' entries are ignored).
    #[must_use]
    pub fn inputs(mut self, inputs: Vec<f64>) -> Self {
        self.inputs = inputs;
        self
    }

    /// Sets the agreement parameter ε (default 0.1).
    #[must_use]
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the a-priori known input range (default: the hull of the
    /// honest inputs).
    #[must_use]
    pub fn range(mut self, range: (f64, f64)) -> Self {
        self.range = Some(range);
        self
    }

    /// Uses a seeded random schedule with delays in `[1, 20]`.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.scheduler = SchedulerSpec::Random { seed, min: 1, max: 20 };
        self
    }

    /// Uses an explicit scheduler spec.
    #[must_use]
    pub fn scheduler(mut self, spec: SchedulerSpec) -> Self {
        self.scheduler = spec;
        self
    }

    /// Marks `v` Byzantine with the given behaviour.
    #[must_use]
    pub fn byzantine(mut self, v: NodeId, kind: AdversaryKind) -> Self {
        self.byzantine.push((v, kind));
        self
    }

    /// Selects the flood mode (default: redundant, as in the paper).
    #[must_use]
    pub fn flood_mode(mut self, mode: FloodMode) -> Self {
        self.flood_mode = mode;
        self
    }

    /// Sets the path-enumeration budget.
    #[must_use]
    pub fn budget(mut self, budget: PathBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Caps the simulator's event budget.
    #[must_use]
    pub fn max_events(mut self, max_events: u64) -> Self {
        self.max_events = max_events;
        self
    }

    /// Overrides the round count (default: the paper's termination bound).
    #[must_use]
    pub fn rounds(mut self, rounds: u32) -> Self {
        self.rounds_override = Some(rounds);
        self
    }

    /// Validates (through the scenario builder) and produces the
    /// [`RunConfig`].
    ///
    /// # Errors
    ///
    /// The scenario layer's typed errors: [`RunError::InputLengthMismatch`],
    /// [`RunError::NonPositiveEpsilon`], [`RunError::FaultOutsideGraph`],
    /// [`RunError::DuplicateFault`], [`RunError::TooManyFaults`], or
    /// [`RunError::InvalidConfig`] for the remaining shapes.
    pub fn build(self) -> Result<RunConfig, RunError> {
        let mut builder = Scenario::builder(self.graph, self.f)
            .inputs(self.inputs)
            .epsilon(self.epsilon)
            .faults(self.byzantine.into_iter().map(|(v, kind)| (v, kind.into())))
            .scheduler(self.scheduler)
            .max_events(self.max_events)
            .protocol(
                ByzantineWitness::default()
                    .with_flood_mode(self.flood_mode)
                    .with_budget(self.budget),
            );
        if let Some(r) = self.range {
            builder = builder.range(r);
        }
        if let Some(r) = self.rounds_override {
            builder = builder.rounds(r);
        }
        let scenario = builder.build()?;
        Ok(RunConfig {
            flood_mode: self.flood_mode,
            rounds_override: self.rounds_override,
            scenario,
        })
    }
}

/// The result of a consensus run (legacy shape of
/// [`Outcome`]).
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Per node: the decided output (`None` for Byzantine nodes and for
    /// honest nodes that could not progress — e.g. when the graph violates
    /// 3-reach).
    pub outputs: Vec<Option<f64>>,
    /// The honest node set.
    pub honest: NodeSet,
    /// Agreement parameter of the run.
    pub epsilon: f64,
    /// The hull of the honest inputs (for validity checking).
    pub honest_input_range: (f64, f64),
    /// Rounds each node was configured to execute.
    pub rounds: u32,
    /// Runtime counters (zeroed for the threaded runtime).
    pub sim_stats: SimStats,
    /// Per node: the state-value trajectory (honest nodes only).
    pub histories: Vec<Option<Vec<f64>>>,
}

impl From<Outcome> for RunOutcome {
    fn from(out: Outcome) -> Self {
        RunOutcome {
            outputs: out.outputs,
            honest: out.honest,
            epsilon: out.epsilon,
            honest_input_range: out.honest_input_range,
            rounds: out.rounds,
            sim_stats: out.sim_stats,
            histories: out.histories,
        }
    }
}

impl RunOutcome {
    /// The decided honest outputs (skips undecided nodes).
    #[must_use]
    pub fn honest_outputs(&self) -> Vec<f64> {
        self.honest.iter().filter_map(|v| self.outputs[v.index()]).collect()
    }

    /// Returns `true` if every honest node decided.
    #[must_use]
    pub fn all_decided(&self) -> bool {
        self.honest.iter().all(|v| self.outputs[v.index()].is_some())
    }

    /// Max − min over decided honest outputs (0 when fewer than two).
    #[must_use]
    pub fn spread(&self) -> f64 {
        let outs = self.honest_outputs();
        if outs.len() < 2 {
            return 0.0;
        }
        outs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - outs.iter().cloned().fold(f64::INFINITY, f64::min)
    }

    /// Convergence (Definition 1.1): all honest nodes decided within ε.
    #[must_use]
    pub fn converged(&self) -> bool {
        self.all_decided() && self.spread() < self.epsilon
    }

    /// Validity (Definition 1.2): every decided output lies in the hull of
    /// the honest inputs.
    #[must_use]
    pub fn valid(&self) -> bool {
        let (lo, hi) = self.honest_input_range;
        self.honest_outputs().iter().all(|&v| v >= lo - 1e-12 && v <= hi + 1e-12)
    }

    /// The per-round honest spread `U[r] − µ[r]`, for the convergence
    /// experiments (Lemma 15: it at least halves every round).
    #[must_use]
    pub fn spread_by_round(&self) -> Vec<f64> {
        let histories: Vec<&Vec<f64>> =
            self.honest.iter().filter_map(|v| self.histories[v.index()].as_ref()).collect();
        if histories.is_empty() {
            return Vec::new();
        }
        let rounds = histories.iter().map(|h| h.len()).min().unwrap_or(0);
        (0..rounds)
            .map(|r| {
                let vals = histories.iter().map(|h| h[r]);
                let hi = vals.clone().fold(f64::NEG_INFINITY, f64::max);
                let lo = vals.fold(f64::INFINITY, f64::min);
                hi - lo
            })
            .collect()
    }
}

/// Executes the full BW protocol on the deterministic discrete-event
/// simulator.
///
/// # Errors
///
/// Propagates topology ([`RunError::Graph`]) and runtime
/// ([`RunError::Sim`]) failures. An honest node failing to decide is *not*
/// an error — it is reported through [`RunOutcome::all_decided`], because
/// on graphs violating 3-reach that is the expected observable behaviour.
#[deprecated(
    since = "0.1.0",
    note = "use scenario::Scenario with the ByzantineWitness protocol and Runtime::Sim"
)]
pub fn run_byzantine_consensus(cfg: &RunConfig) -> Result<RunOutcome, RunError> {
    Ok(cfg.to_scenario(Runtime::Sim)?.run()?.into())
}

/// Executes the same protocol on the thread-per-node runtime (true OS
/// concurrency; non-deterministic interleavings).
///
/// # Errors
///
/// As [`run_byzantine_consensus`], plus [`RunError::Sim`] on timeout.
#[deprecated(
    since = "0.1.0",
    note = "use scenario::Scenario with the ByzantineWitness protocol and Runtime::Threaded"
)]
pub fn run_byzantine_consensus_threaded(
    cfg: &RunConfig,
    timeout: Duration,
) -> Result<RunOutcome, RunError> {
    Ok(cfg.to_scenario(Runtime::threaded(timeout))?.run()?.into())
}

#[cfg(test)]
#[allow(deprecated)] // exercises the legacy shims on top of the scenario API
mod tests {
    use super::*;
    use dbac_graph::generators;

    fn id(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn builder_validation() {
        let g = generators::clique(3);
        // Wrong input count (typed through the scenario layer).
        assert!(matches!(
            RunConfig::builder(g.clone(), 1).inputs(vec![1.0]).build(),
            Err(RunError::InputLengthMismatch { expected: 3, got: 1 })
        ));
        // Too many faults.
        let err = RunConfig::builder(g.clone(), 0)
            .inputs(vec![0.0; 3])
            .byzantine(id(0), AdversaryKind::Crash)
            .build();
        assert!(matches!(err, Err(RunError::TooManyFaults { configured: 1, f: 0 })));
        // Duplicate Byzantine node.
        let err = RunConfig::builder(g.clone(), 2)
            .inputs(vec![0.0; 3])
            .byzantine(id(0), AdversaryKind::Crash)
            .byzantine(id(0), AdversaryKind::Crash)
            .build();
        assert!(matches!(err, Err(RunError::DuplicateFault { node: 0 })));
        // Honest input outside declared range.
        let err = RunConfig::builder(g, 1).inputs(vec![0.0, 5.0, 99.0]).range((0.0, 10.0)).build();
        assert!(matches!(err, Err(RunError::InvalidConfig { .. })));
    }

    #[test]
    fn all_honest_run_converges_and_is_valid() {
        let cfg = RunConfig::builder(generators::clique(4), 1)
            .inputs(vec![0.0, 10.0, 2.0, 8.0])
            .epsilon(0.5)
            .seed(11)
            .build()
            .unwrap();
        let out = run_byzantine_consensus(&cfg).unwrap();
        assert!(out.all_decided());
        assert!(out.converged(), "outputs {:?}", out.outputs);
        assert!(out.valid());
        assert_eq!(out.rounds, 5);
        let spreads = out.spread_by_round();
        assert_eq!(spreads.len(), 6);
        assert_eq!(spreads[0], 10.0);
        assert!(spreads[5] < 0.5);
    }

    #[test]
    fn crash_fault_tolerated_on_k4() {
        let cfg = RunConfig::builder(generators::clique(4), 1)
            .inputs(vec![0.0, 10.0, 2.0, 0.0])
            .epsilon(1.0)
            .byzantine(id(3), AdversaryKind::Crash)
            .seed(3)
            .build()
            .unwrap();
        let out = run_byzantine_consensus(&cfg).unwrap();
        assert!(out.converged(), "outputs {:?}", out.outputs);
        assert!(out.valid());
        assert!(out.outputs[3].is_none());
    }

    #[test]
    fn constant_liar_cannot_break_validity_on_k4() {
        let cfg = RunConfig::builder(generators::clique(4), 1)
            .inputs(vec![2.0, 4.0, 6.0, 0.0])
            .epsilon(0.5)
            .byzantine(id(3), AdversaryKind::ConstantLiar { value: 1_000.0 })
            .seed(17)
            .build()
            .unwrap();
        let out = run_byzantine_consensus(&cfg).unwrap();
        assert!(out.converged(), "outputs {:?}", out.outputs);
        assert!(out.valid(), "liar dragged outputs outside [2, 6]: {:?}", out.outputs);
    }

    #[test]
    fn spread_by_round_halves() {
        let cfg = RunConfig::builder(generators::clique(4), 1)
            .inputs(vec![0.0, 16.0, 4.0, 12.0])
            .epsilon(0.25)
            .seed(23)
            .build()
            .unwrap();
        let out = run_byzantine_consensus(&cfg).unwrap();
        let spreads = out.spread_by_round();
        for w in spreads.windows(2) {
            assert!(w[1] <= w[0] / 2.0 + 1e-12, "halving violated: {spreads:?}");
        }
    }

    /// The shim and the scenario path must agree bit-for-bit: same
    /// protocol, same schedule, same outputs.
    #[test]
    fn shim_matches_direct_scenario() {
        let cfg = RunConfig::builder(generators::clique(4), 1)
            .inputs(vec![0.0, 10.0, 4.0, 6.0])
            .epsilon(0.5)
            .byzantine(id(3), AdversaryKind::ConstantLiar { value: 1e6 })
            .seed(9)
            .build()
            .unwrap();
        let legacy = run_byzantine_consensus(&cfg).unwrap();
        let direct = cfg.to_scenario(Runtime::Sim).unwrap().run().unwrap();
        assert_eq!(legacy.outputs, direct.outputs);
        assert_eq!(legacy.sim_stats, direct.sim_stats);
        assert_eq!(legacy.histories, direct.histories);
    }
}
