//! High-level run orchestration: configure a network, inputs, faults and a
//! schedule; execute the full BW protocol; inspect outputs and per-round
//! convergence.

use crate::adversary::AdversaryKind;
use crate::config::{FloodMode, ProtocolConfig};
use crate::error::RunError;
use crate::node::HonestNode;
use crate::precompute::Topology;
use dbac_graph::{Digraph, NodeId, NodeSet, PathBudget};
use dbac_sim::scheduler::{FixedDelay, RandomDelay};
use dbac_sim::sim::{SimStats, Simulation};
use dbac_sim::threaded::{Threaded, ThreadedConfig};
use dbac_sim::DeliveryPolicy;
use std::sync::Arc;
use std::time::Duration;

/// Message-delivery schedule for a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedulerSpec {
    /// Constant per-message delay.
    Fixed(u64),
    /// Seeded uniform-random delays in `[min, max]`.
    Random {
        /// RNG seed.
        seed: u64,
        /// Minimum delay.
        min: u64,
        /// Maximum delay.
        max: u64,
    },
}

impl SchedulerSpec {
    fn build(self) -> Box<dyn DeliveryPolicy + Send> {
        match self {
            SchedulerSpec::Fixed(d) => Box::new(FixedDelay::new(d)),
            SchedulerSpec::Random { seed, min, max } => Box::new(RandomDelay::new(seed, min, max)),
        }
    }
}

/// A fully specified consensus run.
#[derive(Clone, Debug)]
pub struct RunConfig {
    graph: Digraph,
    f: usize,
    inputs: Vec<f64>,
    epsilon: f64,
    range: (f64, f64),
    byzantine: Vec<(NodeId, AdversaryKind)>,
    scheduler: SchedulerSpec,
    flood_mode: FloodMode,
    budget: PathBudget,
    max_events: u64,
    rounds_override: Option<u32>,
}

impl RunConfig {
    /// Starts building a run over `graph` with fault bound `f`.
    #[must_use]
    pub fn builder(graph: Digraph, f: usize) -> RunConfigBuilder {
        RunConfigBuilder {
            graph,
            f,
            inputs: Vec::new(),
            epsilon: 0.1,
            range: None,
            byzantine: Vec::new(),
            scheduler: SchedulerSpec::Fixed(1),
            flood_mode: FloodMode::Redundant,
            budget: PathBudget::default(),
            max_events: 50_000_000,
            rounds_override: None,
        }
    }

    /// The network.
    #[must_use]
    pub fn graph(&self) -> &Digraph {
        &self.graph
    }

    /// The derived protocol parameters.
    #[must_use]
    pub fn protocol(&self) -> ProtocolConfig {
        let mut p =
            ProtocolConfig::new(self.f, self.epsilon, self.range).with_flood_mode(self.flood_mode);
        if let Some(r) = self.rounds_override {
            p = p.with_rounds(r);
        }
        p
    }

    /// The set of honest nodes.
    #[must_use]
    pub fn honest_set(&self) -> NodeSet {
        let byz: NodeSet = self.byzantine.iter().map(|&(v, _)| v).collect();
        self.graph.vertex_set() - byz
    }
}

/// Builder for [`RunConfig`].
#[derive(Clone, Debug)]
pub struct RunConfigBuilder {
    graph: Digraph,
    f: usize,
    inputs: Vec<f64>,
    epsilon: f64,
    range: Option<(f64, f64)>,
    byzantine: Vec<(NodeId, AdversaryKind)>,
    scheduler: SchedulerSpec,
    flood_mode: FloodMode,
    budget: PathBudget,
    max_events: u64,
    rounds_override: Option<u32>,
}

impl RunConfigBuilder {
    /// Sets one input per node (Byzantine nodes' entries are ignored).
    #[must_use]
    pub fn inputs(mut self, inputs: Vec<f64>) -> Self {
        self.inputs = inputs;
        self
    }

    /// Sets the agreement parameter ε (default 0.1).
    #[must_use]
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the a-priori known input range (default: the hull of the
    /// honest inputs).
    #[must_use]
    pub fn range(mut self, range: (f64, f64)) -> Self {
        self.range = Some(range);
        self
    }

    /// Uses a seeded random schedule with delays in `[1, 20]`.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.scheduler = SchedulerSpec::Random { seed, min: 1, max: 20 };
        self
    }

    /// Uses an explicit scheduler spec.
    #[must_use]
    pub fn scheduler(mut self, spec: SchedulerSpec) -> Self {
        self.scheduler = spec;
        self
    }

    /// Marks `v` Byzantine with the given behaviour.
    #[must_use]
    pub fn byzantine(mut self, v: NodeId, kind: AdversaryKind) -> Self {
        self.byzantine.push((v, kind));
        self
    }

    /// Selects the flood mode (default: redundant, as in the paper).
    #[must_use]
    pub fn flood_mode(mut self, mode: FloodMode) -> Self {
        self.flood_mode = mode;
        self
    }

    /// Sets the path-enumeration budget.
    #[must_use]
    pub fn budget(mut self, budget: PathBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Caps the simulator's event budget.
    #[must_use]
    pub fn max_events(mut self, max_events: u64) -> Self {
        self.max_events = max_events;
        self
    }

    /// Overrides the round count (default: the paper's termination bound).
    #[must_use]
    pub fn rounds(mut self, rounds: u32) -> Self {
        self.rounds_override = Some(rounds);
        self
    }

    /// Validates and produces the [`RunConfig`].
    ///
    /// # Errors
    ///
    /// [`RunError::InvalidConfig`] for malformed inputs,
    /// [`RunError::TooManyFaults`] if more Byzantine nodes than `f`.
    pub fn build(self) -> Result<RunConfig, RunError> {
        let n = self.graph.node_count();
        if self.inputs.len() != n {
            return Err(RunError::InvalidConfig {
                reason: format!("expected {n} inputs, got {}", self.inputs.len()),
            });
        }
        if self.inputs.iter().any(|v| !v.is_finite()) {
            return Err(RunError::InvalidConfig { reason: "inputs must be finite".into() });
        }
        if !(self.epsilon > 0.0 && self.epsilon.is_finite()) {
            return Err(RunError::InvalidConfig { reason: "epsilon must be positive".into() });
        }
        let mut byz = NodeSet::EMPTY;
        for &(v, _) in &self.byzantine {
            if v.index() >= n {
                return Err(RunError::InvalidConfig {
                    reason: format!("byzantine node {v} out of range"),
                });
            }
            if !byz.insert(v) {
                return Err(RunError::InvalidConfig {
                    reason: format!("byzantine node {v} listed twice"),
                });
            }
        }
        if byz.len() > self.f {
            return Err(RunError::TooManyFaults { configured: byz.len(), f: self.f });
        }
        if byz.len() == n {
            return Err(RunError::InvalidConfig { reason: "no honest nodes".into() });
        }
        let honest_inputs: Vec<f64> = self
            .inputs
            .iter()
            .enumerate()
            .filter(|(i, _)| !byz.contains(NodeId::new(*i)))
            .map(|(_, &v)| v)
            .collect();
        let derived = honest_inputs
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)));
        let range = self.range.unwrap_or(derived);
        if range.0 > range.1 || !range.0.is_finite() || !range.1.is_finite() {
            return Err(RunError::InvalidConfig { reason: "invalid input range".into() });
        }
        if honest_inputs.iter().any(|&v| v < range.0 || v > range.1) {
            return Err(RunError::InvalidConfig {
                reason: "honest inputs fall outside the a-priori range".into(),
            });
        }
        Ok(RunConfig {
            graph: self.graph,
            f: self.f,
            inputs: self.inputs,
            epsilon: self.epsilon,
            range,
            byzantine: self.byzantine,
            scheduler: self.scheduler,
            flood_mode: self.flood_mode,
            budget: self.budget,
            max_events: self.max_events,
            rounds_override: self.rounds_override,
        })
    }
}

/// The result of a consensus run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Per node: the decided output (`None` for Byzantine nodes and for
    /// honest nodes that could not progress — e.g. when the graph violates
    /// 3-reach).
    pub outputs: Vec<Option<f64>>,
    /// The honest node set.
    pub honest: NodeSet,
    /// Agreement parameter of the run.
    pub epsilon: f64,
    /// The hull of the honest inputs (for validity checking).
    pub honest_input_range: (f64, f64),
    /// Rounds each node was configured to execute.
    pub rounds: u32,
    /// Runtime counters (zeroed for the threaded runtime).
    pub sim_stats: SimStats,
    /// Per node: the state-value trajectory (honest nodes only).
    pub histories: Vec<Option<Vec<f64>>>,
}

impl RunOutcome {
    /// The decided honest outputs (skips undecided nodes).
    #[must_use]
    pub fn honest_outputs(&self) -> Vec<f64> {
        self.honest.iter().filter_map(|v| self.outputs[v.index()]).collect()
    }

    /// Returns `true` if every honest node decided.
    #[must_use]
    pub fn all_decided(&self) -> bool {
        self.honest.iter().all(|v| self.outputs[v.index()].is_some())
    }

    /// Max − min over decided honest outputs (0 when fewer than two).
    #[must_use]
    pub fn spread(&self) -> f64 {
        let outs = self.honest_outputs();
        if outs.len() < 2 {
            return 0.0;
        }
        outs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - outs.iter().cloned().fold(f64::INFINITY, f64::min)
    }

    /// Convergence (Definition 1.1): all honest nodes decided within ε.
    #[must_use]
    pub fn converged(&self) -> bool {
        self.all_decided() && self.spread() < self.epsilon
    }

    /// Validity (Definition 1.2): every decided output lies in the hull of
    /// the honest inputs.
    #[must_use]
    pub fn valid(&self) -> bool {
        let (lo, hi) = self.honest_input_range;
        self.honest_outputs().iter().all(|&v| v >= lo - 1e-12 && v <= hi + 1e-12)
    }

    /// The per-round honest spread `U[r] − µ[r]`, for the convergence
    /// experiments (Lemma 15: it at least halves every round).
    #[must_use]
    pub fn spread_by_round(&self) -> Vec<f64> {
        let histories: Vec<&Vec<f64>> =
            self.honest.iter().filter_map(|v| self.histories[v.index()].as_ref()).collect();
        if histories.is_empty() {
            return Vec::new();
        }
        let rounds = histories.iter().map(|h| h.len()).min().unwrap_or(0);
        (0..rounds)
            .map(|r| {
                let vals = histories.iter().map(|h| h[r]);
                let hi = vals.clone().fold(f64::NEG_INFINITY, f64::max);
                let lo = vals.fold(f64::INFINITY, f64::min);
                hi - lo
            })
            .collect()
    }
}

/// Executes the full BW protocol on the deterministic discrete-event
/// simulator.
///
/// # Errors
///
/// Propagates topology ([`RunError::Graph`]) and runtime
/// ([`RunError::Sim`]) failures. An honest node failing to decide is *not*
/// an error — it is reported through [`RunOutcome::all_decided`], because
/// on graphs violating 3-reach that is the expected observable behaviour.
pub fn run_byzantine_consensus(cfg: &RunConfig) -> Result<RunOutcome, RunError> {
    let topo = Arc::new(Topology::new(cfg.graph.clone(), cfg.f, cfg.flood_mode, cfg.budget)?);
    let protocol = cfg.protocol();
    let honest = cfg.honest_set();
    let mut sim: Simulation<HonestNode> =
        Simulation::new(Arc::new(cfg.graph.clone()), cfg.scheduler.build());
    sim.set_max_events(cfg.max_events);
    for v in cfg.graph.nodes() {
        if honest.contains(v) {
            sim.set_honest(
                v,
                HonestNode::new(Arc::clone(&topo), protocol, v, cfg.inputs[v.index()]),
            );
        }
    }
    for (v, kind) in &cfg.byzantine {
        sim.set_byzantine(*v, kind.build(Arc::clone(&topo), *v, protocol.rounds));
    }
    let stats = sim.run()?;
    let mut outputs = vec![None; cfg.graph.node_count()];
    let mut histories = vec![None; cfg.graph.node_count()];
    for v in honest.iter() {
        let node = sim.honest(v).expect("honest node present");
        outputs[v.index()] = node.output();
        histories[v.index()] = Some(node.x_history().to_vec());
    }
    Ok(RunOutcome {
        outputs,
        honest,
        epsilon: cfg.epsilon,
        honest_input_range: honest_range(cfg),
        rounds: protocol.rounds,
        sim_stats: stats,
        histories,
    })
}

/// Executes the same protocol on the thread-per-node runtime (true OS
/// concurrency; non-deterministic interleavings).
///
/// # Errors
///
/// As [`run_byzantine_consensus`], plus [`RunError::Sim`] on timeout.
pub fn run_byzantine_consensus_threaded(
    cfg: &RunConfig,
    timeout: Duration,
) -> Result<RunOutcome, RunError> {
    let topo = Arc::new(Topology::new(cfg.graph.clone(), cfg.f, cfg.flood_mode, cfg.budget)?);
    let protocol = cfg.protocol();
    let honest = cfg.honest_set();
    let mut runtime: Threaded<HonestNode> = Threaded::new(Arc::new(cfg.graph.clone()));
    for v in cfg.graph.nodes() {
        if honest.contains(v) {
            runtime.set_honest(
                v,
                HonestNode::new(Arc::clone(&topo), protocol, v, cfg.inputs[v.index()]),
            );
        }
    }
    for (v, kind) in &cfg.byzantine {
        runtime.set_byzantine(*v, kind.build(Arc::clone(&topo), *v, protocol.rounds));
    }
    let seed = match cfg.scheduler {
        SchedulerSpec::Random { seed, .. } => seed,
        SchedulerSpec::Fixed(_) => 0,
    };
    let nodes =
        runtime.run(HonestNode::is_done, ThreadedConfig { timeout, jitter_micros: 30, seed })?;
    let mut outputs = vec![None; cfg.graph.node_count()];
    let mut histories = vec![None; cfg.graph.node_count()];
    for (i, node) in nodes.into_iter().enumerate() {
        if let Some(node) = node {
            outputs[i] = node.output();
            histories[i] = Some(node.x_history().to_vec());
        }
    }
    Ok(RunOutcome {
        outputs,
        honest,
        epsilon: cfg.epsilon,
        honest_input_range: honest_range(cfg),
        rounds: protocol.rounds,
        sim_stats: SimStats::default(),
        histories,
    })
}

fn honest_range(cfg: &RunConfig) -> (f64, f64) {
    let honest = cfg.honest_set();
    honest
        .iter()
        .map(|v| cfg.inputs[v.index()])
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| (lo.min(v), hi.max(v)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbac_graph::generators;

    fn id(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn builder_validation() {
        let g = generators::clique(3);
        // Wrong input count.
        assert!(matches!(
            RunConfig::builder(g.clone(), 1).inputs(vec![1.0]).build(),
            Err(RunError::InvalidConfig { .. })
        ));
        // Too many faults.
        let err = RunConfig::builder(g.clone(), 0)
            .inputs(vec![0.0; 3])
            .byzantine(id(0), AdversaryKind::Crash)
            .build();
        assert!(matches!(err, Err(RunError::TooManyFaults { configured: 1, f: 0 })));
        // Duplicate Byzantine node.
        let err = RunConfig::builder(g.clone(), 2)
            .inputs(vec![0.0; 3])
            .byzantine(id(0), AdversaryKind::Crash)
            .byzantine(id(0), AdversaryKind::Crash)
            .build();
        assert!(matches!(err, Err(RunError::InvalidConfig { .. })));
        // Honest input outside declared range.
        let err = RunConfig::builder(g, 1).inputs(vec![0.0, 5.0, 99.0]).range((0.0, 10.0)).build();
        assert!(matches!(err, Err(RunError::InvalidConfig { .. })));
    }

    #[test]
    fn all_honest_run_converges_and_is_valid() {
        let cfg = RunConfig::builder(generators::clique(4), 1)
            .inputs(vec![0.0, 10.0, 2.0, 8.0])
            .epsilon(0.5)
            .seed(11)
            .build()
            .unwrap();
        let out = run_byzantine_consensus(&cfg).unwrap();
        assert!(out.all_decided());
        assert!(out.converged(), "outputs {:?}", out.outputs);
        assert!(out.valid());
        assert_eq!(out.rounds, 5);
        let spreads = out.spread_by_round();
        assert_eq!(spreads.len(), 6);
        assert_eq!(spreads[0], 10.0);
        assert!(spreads[5] < 0.5);
    }

    #[test]
    fn crash_fault_tolerated_on_k4() {
        let cfg = RunConfig::builder(generators::clique(4), 1)
            .inputs(vec![0.0, 10.0, 2.0, 0.0])
            .epsilon(1.0)
            .byzantine(id(3), AdversaryKind::Crash)
            .seed(3)
            .build()
            .unwrap();
        let out = run_byzantine_consensus(&cfg).unwrap();
        assert!(out.converged(), "outputs {:?}", out.outputs);
        assert!(out.valid());
        assert!(out.outputs[3].is_none());
    }

    #[test]
    fn constant_liar_cannot_break_validity_on_k4() {
        let cfg = RunConfig::builder(generators::clique(4), 1)
            .inputs(vec![2.0, 4.0, 6.0, 0.0])
            .epsilon(0.5)
            .byzantine(id(3), AdversaryKind::ConstantLiar { value: 1_000.0 })
            .seed(17)
            .build()
            .unwrap();
        let out = run_byzantine_consensus(&cfg).unwrap();
        assert!(out.converged(), "outputs {:?}", out.outputs);
        assert!(out.valid(), "liar dragged outputs outside [2, 6]: {:?}", out.outputs);
    }

    #[test]
    fn spread_by_round_halves() {
        let cfg = RunConfig::builder(generators::clique(4), 1)
            .inputs(vec![0.0, 16.0, 4.0, 12.0])
            .epsilon(0.25)
            .seed(23)
            .build()
            .unwrap();
        let out = run_byzantine_consensus(&cfg).unwrap();
        let spreads = out.spread_by_round();
        for w in spreads.windows(2) {
            assert!(w[1] <= w[0] / 2.0 + 1e-12, "halving violated: {spreads:?}");
        }
    }
}
