//! # dbac — Directed Byzantine Approximate Consensus
//!
//! A production-quality reproduction of *"Asynchronous Byzantine Approximate
//! Consensus in Directed Networks"* (Sakavalas, Tseng, Vaidya — PODC 2020,
//! arXiv:2004.09054).
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`graph`] — the directed-network substrate (node sets, paths, SCC,
//!   disjoint paths, generators including the paper's Figure 1 graphs).
//! * [`conditions`] — the paper's topological conditions: reach sets,
//!   reduced graphs, source components, the k-reach family, CCS/CCA/BCS,
//!   f-covers and the propagation relation.
//! * [`sim`] — asynchronous message-passing runtimes: a deterministic
//!   discrete-event simulator with adversarial schedulers, a
//!   thread-per-node runtime, and a socket-backed net runtime with a
//!   length-prefixed binary wire codec.
//! * [`core`] — the paper's algorithm: RedundantFlood, FIFO flooding,
//!   Algorithm BW (Byzantine Witness), Algorithm 2 (Completeness),
//!   Algorithm 3 (Filter-and-Average), and the crash-tolerant 2-reach
//!   variant.
//! * [`baselines`] — Bracha reliable broadcast, the Abraham–Amit–Dolev 2004
//!   witness algorithm for complete networks, and iterative trimmed-mean
//!   consensus.
//! * [`scenario`] — the unified **Scenario → Outcome** experiment surface
//!   over all of the above: one builder, five protocols, three runtimes,
//!   plus the dimensional [`scenario::sweep`] experiment plans with
//!   seed-batch statistics and JSON reports.
//!
//! # Quickstart
//!
//! Describe an experiment as data — network, inputs, faults, schedule,
//! runtime — pick a protocol, and run it:
//!
//! ```
//! use dbac::conditions::kreach;
//! use dbac::graph::{generators, NodeId};
//! use dbac::scenario::{ByzantineWitness, FaultKind, Scenario};
//!
//! // A complete network on 4 nodes tolerates f = 1 (n > 3f ⇔ 3-reach).
//! let g = generators::clique(4);
//! assert!(kreach::three_reach(&g, 1).holds());
//!
//! let outcome = Scenario::builder(g, 1)
//!     .inputs(vec![0.0, 10.0, 4.0, 6.0])
//!     .epsilon(0.5)
//!     .fault(NodeId::new(3), FaultKind::ConstantLiar { value: 1e6 })
//!     .seed(7)
//!     .protocol(ByzantineWitness::default())
//!     .run()
//!     .expect("scenario runs");
//! assert!(outcome.converged() && outcome.valid());
//! assert!(outcome.sim_stats.messages_delivered() > 0);
//! ```
//!
//! Swapping `.protocol(...)` (and nothing else) re-runs the same scenario
//! under a different algorithm; `.runtime(Runtime::Threaded { .. })` moves
//! it onto real OS threads, and `.runtime(Runtime::net(..))` onto real
//! sockets with every message crossing the binary wire codec.
//!
//! Every outcome carries a [`scenario::StatsSnapshot`] — per-class
//! transport counters, protocol progress, and per-node queue gauges. To
//! watch those counters *while* a run executes, attach a shared
//! [`scenario::StatsRegistry`] via `.stats(..)` and poll
//! `registry.snapshot()` from another thread (or point the `dbacd`
//! daemon binary at a scenario and query it over a socket); see
//! "Observe a live run" in [`core::scenario`].
//!
//! # Declare an experiment
//!
//! Parameter sweeps are *plans*, not loops: an
//! [`ExperimentPlan`](scenario::sweep::ExperimentPlan) is a grid
//! description whose axes cover every scenario knob — protocols (with
//! their knobs), graphs, fault bounds, fault placements, inputs, ε,
//! scheduler families, link-fault plans, runtimes and round overrides —
//! while the seeds form
//! the statistical axis. `build()` expands the cartesian product,
//! `run()` executes every cell in parallel, and `reduce()` aggregates each
//! seed batch into distributional statistics (mean/median/min/max/stddev),
//! renderable as `bench_trend`-compatible JSON:
//!
//! ```
//! use dbac::graph::generators;
//! use dbac::scenario::sweep::{ExperimentPlan, SchedulerFamily};
//! use dbac::scenario::ByzantineWitness;
//!
//! let sweep = ExperimentPlan::new()
//!     .protocol("bw", ByzantineWitness::default())
//!     .graph("K4", generators::clique(4))
//!     .epsilons([1.0, 0.5])                           // ε axis
//!     .scheduler("rand", SchedulerFamily::random(1, 20))
//!     .seeds([1, 2, 3])                               // statistical axis
//!     .build()
//!     .expect("plan expands");
//! assert_eq!(sweep.cell_count(), 2 * 3);
//! let stats = sweep.run().reduce();                   // groups: all axes except seed
//! assert_eq!(stats.cells.len(), 2);
//! assert!(stats.cells.iter().all(|c| c.converged == 3));
//! ```
//!
//! A cell whose scenario is invalid (e.g. a protocol rejecting the graph)
//! becomes a typed error row without poisoning its siblings; the
//! experiment binaries (`convergence`, `ablation`, `figure1`, `table2`,
//! `baseline_compare`) are exactly such plan descriptions plus table
//! renderers. The five protocols map onto the paper as follows:
//!
//! | `Protocol` | Paper section it reproduces |
//! |------------|-----------------------------|
//! | [`scenario::ByzantineWitness`] | Algorithms 1–3 (Sections 4.1–4.5); Theorem 4 under 3-reach |
//! | [`scenario::CrashTwoReach`] | Table 2, asynchronous/crash cell (2-reach; Tseng–Vaidya 2012 per Section 2) |
//! | [`scenario::Aad04`] | Section 1 related work \[1\]: Abraham–Amit–Dolev OPODIS 2004 on complete networks |
//! | [`scenario::IterativeTrimmedMean`] | Related work \[13, 25\]: W-MSR under `(f+1, f+1)`-robustness |
//! | [`scenario::ReliableBroadcastProbe`] | Bracha reliable broadcast, AAD04's substrate |

pub use dbac_baselines as baselines;
pub use dbac_conditions as conditions;
pub use dbac_core as core;
pub use dbac_graph as graph;
pub use dbac_sim as sim;

/// The unified **Scenario → Outcome** experiment surface: the core builder
/// and protocols from [`dbac_core::scenario`] plus the baseline protocols
/// from [`dbac_baselines::scenario`], in one namespace.
pub mod scenario {
    pub use dbac_baselines::scenario::{Aad04, IterativeTrimmedMean, ReliableBroadcastProbe};
    pub use dbac_core::scenario::{
        drive, sweep, ByzantineWitness, ClassCounters, Coverage, CrashTwoReach, Delivery,
        DriveReport, FaultKind, Incomplete, IncompleteReason, LinkFault, LinkFaultPlan, MsgClass,
        NodeCounters, Outcome, Protocol, ProtocolCounters, Runtime, Scenario, ScenarioBuilder,
        SchedulerSpec, StatsHandle, StatsRegistry, StatsSnapshot, TraceSummary, TransportKind,
        TransportSnapshot, WireError, WireMessage,
    };
}
