//! # dbac — Directed Byzantine Approximate Consensus
//!
//! A production-quality reproduction of *"Asynchronous Byzantine Approximate
//! Consensus in Directed Networks"* (Sakavalas, Tseng, Vaidya — PODC 2020,
//! arXiv:2004.09054).
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`graph`] — the directed-network substrate (node sets, paths, SCC,
//!   disjoint paths, generators including the paper's Figure 1 graphs).
//! * [`conditions`] — the paper's topological conditions: reach sets,
//!   reduced graphs, source components, the k-reach family, CCS/CCA/BCS,
//!   f-covers and the propagation relation.
//! * [`sim`] — asynchronous message-passing runtimes: a deterministic
//!   discrete-event simulator with adversarial schedulers and a
//!   thread-per-node runtime.
//! * [`core`] — the paper's algorithm: RedundantFlood, FIFO flooding,
//!   Algorithm BW (Byzantine Witness), Algorithm 2 (Completeness),
//!   Algorithm 3 (Filter-and-Average), and the crash-tolerant 2-reach
//!   variant.
//! * [`baselines`] — Bracha reliable broadcast, the Abraham–Amit–Dolev 2004
//!   witness algorithm for complete networks, and iterative trimmed-mean
//!   consensus.
//!
//! # Quickstart
//!
//! ```
//! use dbac::conditions::kreach;
//! use dbac::core::run::{run_byzantine_consensus, RunConfig};
//! use dbac::graph::generators;
//!
//! // A complete network on 4 nodes tolerates f = 1 (n > 3f ⇔ 3-reach).
//! let g = generators::clique(4);
//! assert!(kreach::three_reach(&g, 1).holds());
//!
//! let cfg = RunConfig::builder(g, 1)
//!     .inputs(vec![0.0, 10.0, 4.0, 6.0])
//!     .epsilon(0.5)
//!     .seed(7)
//!     .build()
//!     .expect("valid configuration");
//! let outcome = run_byzantine_consensus(&cfg).expect("run succeeds");
//! assert!(outcome.converged());
//! ```

pub use dbac_baselines as baselines;
pub use dbac_conditions as conditions;
pub use dbac_core as core;
pub use dbac_graph as graph;
pub use dbac_sim as sim;
